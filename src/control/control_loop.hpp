// ControlLoop — closes the loop between the simulator's sensors and CROC.
//
// Owns the sense → estimate → decide → plan → apply cycle of elastic
// autoscaling: each step() advances the simulation by one control interval,
// folds the sampler rows it produced into the LoadEstimator, asks the
// ElasticController for a decision, and on Consolidate/Commission plans via
// Croc::reconfigure_incremental (warm session; the broker universe captured
// at construction rides along as CROC's reserve pool so parked brokers can
// be commissioned back) and applies via apply_plan_transactional with the
// simulator's liveness probe. A failed apply rolls back (the simulator
// never sees the half-applied plan), feeds the controller's backoff, and is
// re-planned once the backoff expires and the signal persists.
//
// Accounting is windowed: per-interval SimSummary harvests plus a merged
// delivery-delay histogram, so broker-hours, delivery counts and the exact
// overall p99 survive metric resets and redeploys. With `enabled = false`
// the loop senses and accounts but never plans — traffic is untouched, so
// summaries stay bit-identical to an uncontrolled run.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "control/elastic_controller.hpp"
#include "control/failure_detector.hpp"
#include "control/load_estimator.hpp"
#include "croc/croc.hpp"
#include "sim/metrics.hpp"
#include "sim/simulation.hpp"

namespace greenps::control {

// Replays a rate schedule onto the simulator's publishers: captures every
// publisher's base rate at construction and scales all of them by a
// multiplier between run() slices (DiurnalSchedule supplies the series).
class RateModulator {
 public:
  explicit RateModulator(const Simulation& sim) {
    for (const auto& p : sim.deployment().publishers) {
      base_.emplace_back(p.client, p.rate_msg_s);
    }
  }

  void apply(Simulation& sim, double multiplier) const {
    for (const auto& [client, rate] : base_) {
      sim.set_publisher_rate(client, rate * multiplier);
    }
  }

 private:
  std::vector<std::pair<ClientId, MsgRate>> base_;
};

struct ControlLoopConfig {
  double interval_s = 10;          // sim seconds per control tick
  double sample_interval_ms = 1000;  // sampler period driven into the sim
  bool enabled = true;             // false: sense + account only
  ControllerConfig controller;
  CrocConfig croc;                 // seed/cram options; headroom is overridden
  // Allocator headroom per regime: consolidations pack close to full
  // capacity; commissions leave slack because the CBC publisher rates that
  // size the plan are lifetime averages and lag a rising flash crowd.
  double consolidate_headroom = 0.92;
  double commission_headroom = 0.60;

  // ---- self-healing ----
  // Emergency recovery on confirmed broker death: plan around the dead
  // broker (quarantined from CROC's pool and reserve), re-home its orphaned
  // clients, apply transactionally. Skips dwell/cooldown like the backlog
  // emergency; requires `enabled`.
  bool healing = true;
  // Detection windows. expected_interval_s is overwritten from
  // sample_interval_ms at construction (heartbeats ARE the sampler rows);
  // tune suspicion via the phi/min_missed knobs.
  FailureDetectorConfig detector;
  // How long a confirmed-dead broker stays unplannable after recovery
  // (loop-timeline seconds). Once expired the broker is commissionable
  // again — the simulator recreates decommissioned brokers fresh, so this
  // models the operator's repair/replacement time.
  double quarantine_s = 120;

  // Seed for the learned headroom correction (ROADMAP follow-up: persist
  // headroom_scale_ across runs). <= 0 resolves GREENPS_HEADROOM_SCALE from
  // the environment, defaulting to 1.0 (trust the allocator's model).
  double initial_headroom_scale = 0;
};

// Everything one control tick did, for reports and tests.
struct TickRecord {
  double time_s = 0;  // loop timeline at the decision point (end of the
                      // window; continuous across redeploys)
  LoadEstimate estimate;
  Decision decision;
  SimSummary window;  // the interval's metrics (pre-reset harvest)
  std::size_t brokers_before = 0;
  std::size_t brokers_after = 0;
  bool planned = false;
  bool applied = false;
  FailureReason plan_failure = FailureReason::kNone;
  FailureReason apply_failure = FailureReason::kNone;
  PlanScore score;  // consolidations only
  MigrationCost migration;
  // Failure-detector view at this tick (deployed brokers only).
  std::vector<BrokerId> suspects;
  std::vector<BrokerId> dead;
  std::size_t orphans_rehomed = 0;  // recovery ticks only
};

struct ControlTotals {
  double broker_seconds = 0;  // deployment size integrated over sim time
  std::uint64_t publications = 0;
  std::uint64_t deliveries = 0;
  double delay_sum_ms = 0;  // for the overall mean
  std::size_t reconfigurations = 0;  // successful applies
  std::size_t commissions = 0;
  std::size_t consolidations = 0;
  std::size_t plan_failures = 0;
  std::size_t apply_failures = 0;   // rolled back
  std::size_t plans_rejected = 0;   // scored not-worth-it / no-op
  std::size_t clients_migrated = 0;
  std::size_t detections = 0;       // brokers confirmed dead by the detector
  std::size_t recoveries = 0;       // successful emergency recovery applies
  std::size_t orphans_rehomed = 0;  // clients re-attached by recoveries
};

// One completed emergency recovery: a broker the detector confirmed dead
// and the loop planned out of the deployment. recovered_s - detected_s is
// the detection->clients-reattached recovery time E15 bounds.
struct RecoveryRecord {
  BrokerId broker;
  double detected_s = 0;   // loop time the detector declared it dead
  double recovered_s = 0;  // loop time the recovery plan was applied
  std::size_t orphans = 0; // orphaned clients re-homed by this recovery
};

class ControlLoop {
 public:
  // Captures the current deployment as the broker universe: its capacities
  // are the commissionable pool for the whole run, so construct the loop
  // while the full (peak) deployment is live.
  ControlLoop(Simulation& sim, ControlLoopConfig config);

  // Advance one control interval and decide/act. The caller shapes traffic
  // (RateModulator) before each step.
  const TickRecord& step();
  // ceil(seconds / interval) steps.
  void run_for(double seconds);

  [[nodiscard]] const std::vector<TickRecord>& history() const { return history_; }
  [[nodiscard]] const ControlTotals& totals() const { return totals_; }
  // Exact distribution over the whole run (merged per-window histograms).
  [[nodiscard]] const DelayHistogram& delay_histogram() const { return delays_; }
  [[nodiscard]] Simulation& sim() { return sim_; }
  [[nodiscard]] const ElasticController& controller() const { return controller_; }
  [[nodiscard]] const FailureDetector& detector() const { return detector_; }
  [[nodiscard]] const std::vector<RecoveryRecord>& recoveries() const {
    return recoveries_;
  }
  // The learned allocator-headroom correction as of now — persist it across
  // runs by seeding the next run's initial_headroom_scale (or
  // GREENPS_HEADROOM_SCALE) with this value.
  [[nodiscard]] double headroom_scale() const { return headroom_scale_; }

  // Test hook: runs after planning, before the transactional apply —
  // injecting a fault here exercises the rollback → backoff → re-plan path.
  std::function<void(const ReconfigurationPlan&)> pre_apply_hook;
  // Run around every successful redeploy: `pre` sees the outgoing epoch
  // while its ledgers are still live (per-epoch loss audits), `post` sees
  // the fresh deployment before any traffic (fault-option re-arm — a
  // redeploy clears the simulator's fault state).
  std::function<void(Simulation&)> pre_redeploy_hook;
  std::function<void(Simulation&)> post_redeploy_hook;

 private:
  void act(TickRecord& rec, double now_s);
  // Emergency re-homing after confirmed broker death(s).
  void recover(TickRecord& rec, double now_s);
  // Total-outage recovery: every deployed broker is dead or unreachable, so
  // there is no entry broker to gather through. Commissions fresh reserve
  // brokers (ascending id, never fewer than two when the reserve allows)
  // sized to the capacity that vanished, on a star overlay; clients are
  // re-homed by the caller's pin_and_rehome pass.
  [[nodiscard]] ReconfigurationReport bootstrap_plan() const;
  // Bounded-migration surgery on a recovery plan: pin every surviving
  // client to its current home (when the plan keeps that broker) and
  // round-robin the dead brokers' orphans across the surviving plan
  // brokers. Returns the orphan count; per_home gets per-dead-broker
  // counts for the recovery records.
  [[nodiscard]] std::size_t pin_and_rehome(ReconfigurationPlan& plan,
                                           const std::vector<BrokerId>& dead,
                                           std::map<BrokerId, std::size_t>& per_home) const;
  // Drop expired quarantine entries and push the active set to CROC.
  void refresh_quarantine(double now_s);
  // Shared apply tail: pre_apply_hook → transactional apply → redeploy (+
  // hooks, detector re-watch) → controller/totals bookkeeping. False means
  // the apply rolled back (backoff already fed).
  bool finish_apply(TickRecord& rec, const ReconfigurationReport& report,
                    ControlAction action, double now_s, std::size_t moved);
  [[nodiscard]] double capacity_of(const std::vector<BrokerId>& brokers) const;

  Simulation& sim_;
  ControlLoopConfig config_;
  ElasticController controller_;
  LoadEstimator estimator_;
  FailureDetector detector_;
  // Confirmed-dead brokers and when their quarantine lapses (loop time).
  std::map<BrokerId, double> quarantine_until_;
  std::vector<RecoveryRecord> recoveries_;
  Croc croc_;
  std::unordered_map<BrokerId, BrokerCapacity> universe_;
  // Learned correction for the allocator's packing model (which does not
  // charge overlay forwarding): tightened whenever a plan's projected
  // utilization trips the delay-risk gate, loosened past 1.0 — a deliberate
  // overbook of the nominal headroom — when measurements show the profiled
  // rates overstate the real load. 1.0 = trust the model.
  double headroom_scale_ = 1.0;
  static constexpr int kMaxPlanAttempts = 3;
  static constexpr double kMaxScale = 3.0;
  std::size_t consumed_rows_ = 0;
  // Continuous loop timeline (the sim's event clock restarts per redeploy).
  double now_s_ = 0;
  double last_deploy_s_ = 0;
  std::vector<TickRecord> history_;
  ControlTotals totals_;
  DelayHistogram delays_;
};

}  // namespace greenps::control
