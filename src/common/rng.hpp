// Deterministic random number generation.
//
// Every stochastic component (workload generation, AUTOMATIC topology,
// FBF's random subscription draws, ...) takes an explicit Rng so whole
// experiments are reproducible from a single seed.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace greenps {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Uniform real in [lo, hi).
  [[nodiscard]] double uniform_real(double lo, double hi);

  // Standard normal draw.
  [[nodiscard]] double gaussian(double mean, double stddev);

  // Bernoulli draw with probability p of true.
  [[nodiscard]] bool chance(double p);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Pick a uniformly random index in [0, n).
  [[nodiscard]] std::size_t index(std::size_t n);

  // Derive an independent child generator (for per-entity streams).
  [[nodiscard]] Rng fork();

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace greenps
