#include "common/thread_pool.hpp"

#include <algorithm>
#include <cassert>

#include "obs/trace.hpp"

namespace greenps {

std::size_t ThreadPool::resolve(std::size_t requested) {
  if (requested != 0) return requested;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t total = resolve(threads);
  workers_.reserve(total - 1);
  for (std::size_t i = 1; i < total; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_indices(const std::function<void(std::size_t, std::size_t)>& fn,
                             std::size_t n, std::size_t slot) {
  for (std::size_t i = next_.fetch_add(1, std::memory_order_relaxed); i < n;
       i = next_.fetch_add(1, std::memory_order_relaxed)) {
    fn(i, slot);
  }
}

void ThreadPool::worker_loop(std::size_t slot) {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    cv_start_.wait(lk, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    const auto* job = job_;
    const std::size_t n = job_n_;
    const bool static_mode = static_slots_;
    lk.unlock();
    {
      // One span per job execution, tagged with the worker slot so traces
      // show which worker carried which share of the parallel region.
      GREENPS_SPAN_TAGGED("pool.work", slot);
      if (static_mode) {
        if (slot < n) (*job)(slot, slot);
      } else {
        run_indices(*job, n, slot);
      }
    }
    lk.lock();
    if (--active_ == 0) cv_done_.notify_one();
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  parallel_for_indexed(n, [&fn](std::size_t i, std::size_t /*slot*/) { fn(i); });
}

void ThreadPool::parallel_for_indexed(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i, 0);
    return;
  }
  {
    const std::lock_guard<std::mutex> lk(mu_);
    job_ = &fn;
    job_n_ = n;
    next_.store(0, std::memory_order_relaxed);
    active_ = workers_.size();
    ++generation_;
  }
  cv_start_.notify_all();
  {
    GREENPS_SPAN_TAGGED("pool.work", 0);
    run_indices(fn, n, 0);
  }
  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [&] { return active_ == 0; });
  job_ = nullptr;
}

void ThreadPool::run_slots(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  // A cooperative job would deadlock with fewer threads than slots.
  assert(n <= size());
  const std::function<void(std::size_t, std::size_t)> job =
      [&fn](std::size_t i, std::size_t /*slot*/) { fn(i); };
  {
    const std::lock_guard<std::mutex> lk(mu_);
    job_ = &job;
    job_n_ = n;
    static_slots_ = true;
    active_ = workers_.size();
    ++generation_;
  }
  cv_start_.notify_all();
  {
    GREENPS_SPAN_TAGGED("pool.work", 0);
    job(0, 0);
  }
  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [&] { return active_ == 0; });
  job_ = nullptr;
  static_slots_ = false;
}

}  // namespace greenps
