// Small reusable worker pool for data-parallel loops.
//
// Built for CRAM's pair search (Section IV-C): one pool is created per
// allocation run and reused across every refresh of the dirty set, so the
// thread-spawn cost is paid once, not per iteration. The calling thread
// participates in every loop, so a pool of size N uses N-1 workers.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace greenps {

class ThreadPool {
 public:
  // `threads` counts the calling thread: 2 means one extra worker.
  // 0 resolves to std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total threads participating in a loop (workers + caller).
  [[nodiscard]] std::size_t size() const { return workers_.size() + 1; }

  // Invoke fn(i) exactly once for every i in [0, n), blocking until all
  // indices finished. Indices are claimed dynamically, so fn may run on any
  // thread in any order — callers needing determinism must write results
  // into per-index slots and merge after the join. fn must not throw.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  // Same, but fn(i, slot) also receives the executing thread's slot: the
  // caller is slot 0, workers are 1..size()-1. Slots are stable across
  // jobs, so callers may keep per-slot scratch state (CRAM's speculative
  // probe scratch) without any synchronization.
  void parallel_for_indexed(std::size_t n,
                            const std::function<void(std::size_t, std::size_t)>& fn);

  // Run fn(slot) for every slot in [0, n), each slot pinned to a distinct
  // thread (the caller is slot 0), blocking until all return. Unlike
  // parallel_for, indices are NOT claimed dynamically, so fn may
  // synchronize across slots (barriers, lockstep phases) without risking
  // one thread claiming two cooperating indices and deadlocking. Requires
  // n <= size(); fn must not throw.
  void run_slots(std::size_t n, const std::function<void(std::size_t)>& fn);

  // Resolve a thread-count option: 0 = hardware_concurrency (min 1).
  [[nodiscard]] static std::size_t resolve(std::size_t requested);

 private:
  void worker_loop(std::size_t slot);
  void run_indices(const std::function<void(std::size_t, std::size_t)>& fn, std::size_t n,
                   std::size_t slot);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t, std::size_t)>* job_ = nullptr;
  std::size_t job_n_ = 0;
  bool static_slots_ = false;  // current job: slot s runs index s only
  std::atomic<std::size_t> next_{0};
  std::size_t active_ = 0;       // workers still inside the current job
  std::uint64_t generation_ = 0;  // bumped per job so workers never re-run one
  bool stop_ = false;
};

}  // namespace greenps
