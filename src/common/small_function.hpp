// Move-only callable with inline (small-buffer) storage and NO heap
// fallback: a callable larger than the buffer is a compile-time error, so
// hot paths that construct one per event provably never allocate. This is
// what EventQueue stores instead of std::function, whose libstdc++ inline
// buffer (16 bytes) is far too small for the simulator's closures.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace greenps {

template <typename Signature, std::size_t Capacity = 64>
class SmallFunction;  // primary template, never defined

template <typename R, typename... Args, std::size_t Capacity>
class SmallFunction<R(Args...), Capacity> {
 public:
  SmallFunction() = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, SmallFunction> &&
             std::is_invocable_r_v<R, std::decay_t<F>&, Args...>)
  SmallFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= Capacity,
                  "callable exceeds SmallFunction capacity — no heap fallback; "
                  "raise Capacity or shrink the capture");
    static_assert(alignof(Fn) <= alignof(std::max_align_t));
    static_assert(std::is_nothrow_move_constructible_v<Fn>);
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    invoke_ = [](void* p, Args... args) -> R {
      return (*std::launder(reinterpret_cast<Fn*>(p)))(std::forward<Args>(args)...);
    };
    relocate_ = [](void* dst, void* src) {
      Fn* s = std::launder(reinterpret_cast<Fn*>(src));
      ::new (dst) Fn(std::move(*s));
      s->~Fn();
    };
    destroy_ = [](void* p) { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); };
  }

  SmallFunction(SmallFunction&& other) noexcept { move_from(other); }

  SmallFunction& operator=(SmallFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SmallFunction(const SmallFunction&) = delete;
  SmallFunction& operator=(const SmallFunction&) = delete;

  ~SmallFunction() { reset(); }

  R operator()(Args... args) { return invoke_(buf_, std::forward<Args>(args)...); }

  explicit operator bool() const { return invoke_ != nullptr; }

 private:
  void move_from(SmallFunction& other) noexcept {
    if (other.invoke_ == nullptr) return;
    other.relocate_(buf_, other.buf_);
    invoke_ = other.invoke_;
    relocate_ = other.relocate_;
    destroy_ = other.destroy_;
    other.invoke_ = nullptr;
  }

  void reset() {
    if (invoke_ != nullptr) {
      destroy_(buf_);
      invoke_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  R (*invoke_)(void*, Args...) = nullptr;
  void (*relocate_)(void* dst, void* src) = nullptr;
  void (*destroy_)(void*) = nullptr;
};

}  // namespace greenps
