// Minimal leveled logger.
//
// The library is a simulation/analysis toolkit, so logging is synchronous
// stderr output guarded by a global level; benches set Level::kWarn to keep
// output clean.
#pragma once

#include <sstream>
#include <string>

namespace greenps::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_level(Level level);
[[nodiscard]] Level level();

void write(Level level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void debug(const Args&... args) {
  if (level() <= Level::kDebug) write(Level::kDebug, detail::concat(args...));
}
template <typename... Args>
void info(const Args&... args) {
  if (level() <= Level::kInfo) write(Level::kInfo, detail::concat(args...));
}
template <typename... Args>
void warn(const Args&... args) {
  if (level() <= Level::kWarn) write(Level::kWarn, detail::concat(args...));
}
template <typename... Args>
void error(const Args&... args) {
  if (level() <= Level::kError) write(Level::kError, detail::concat(args...));
}

}  // namespace greenps::log
