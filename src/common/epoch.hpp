// Epoch-based reclamation for read-mostly published snapshots.
//
// The broker's matching state (routing-table snapshots, the interner's
// lookup table) is read constantly and replaced rarely. Writers build a new
// immutable snapshot off the read path and publish it with one atomic
// pointer swap; readers pin the global epoch for the duration of an access
// and never take a lock. A replaced snapshot is *retired*, not freed: it is
// stamped with the epoch at retirement and reclaimed only once every reader
// pinned at or before that stamp has left — the RCU grace period, tracked
// with per-thread epoch slots instead of per-object reference counts so the
// read path costs two uncontended atomic stores, not a shared cacheline.
//
// Memory ordering: pin/unpin and the published-pointer accesses are seq_cst
// so a reader's slot store and its snapshot-pointer load cannot reorder
// (the classic epoch-reclamation StoreLoad hazard) and so reclamation has a
// synchronizes-with edge from every reader's unpin — TSan sees the
// happens-before chain from last read to free.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/small_function.hpp"

namespace greenps {

class EpochDomain {
 public:
  // The process-wide domain shared by every published table. One domain
  // keeps thread registration (one slot per reader thread) single.
  [[nodiscard]] static EpochDomain& global();

  // Register `ptr` for deferred deletion: freed by a later try_reclaim()
  // once no reader pinned at or before the current epoch remains. The
  // deleter runs exactly once (possibly from the domain's destructor at
  // process exit). Write-side only; serialized internally.
  template <typename T>
  void retire(const T* ptr) {
    if (ptr == nullptr) return;
    retire_erased(SmallFunction<void()>([ptr] { delete ptr; }));
  }

  // Free every retired snapshot whose grace period has elapsed. Cheap when
  // the retire list is empty; safe to call from any thread, including
  // concurrently with readers.
  void try_reclaim();

  // --- introspection (tests, torture suites) ---
  [[nodiscard]] std::size_t retired_pending() const;
  [[nodiscard]] std::uint64_t reclaimed_total() const;
  [[nodiscard]] std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_relaxed);
  }

  ~EpochDomain();
  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

 private:
  friend class EpochGuard;
  EpochDomain();

  struct alignas(64) ReaderSlot {
    // 0 = idle; otherwise the epoch the thread pinned. claimed is the slot
    // allocator's flag, toggled at thread registration/exit.
    std::atomic<std::uint64_t> epoch{0};
    std::atomic<bool> claimed{false};
  };

  struct Retired {
    SmallFunction<void()> deleter;
    std::uint64_t stamp = 0;
  };

  // Per-thread pin bookkeeping: the claimed slot plus a nesting depth so an
  // inner guard (the interner inside a routing-table match) reuses the
  // outer pin instead of advancing it.
  struct ThreadState {
    ReaderSlot* slot = nullptr;
    int depth = 0;
    ~ThreadState();
  };

  [[nodiscard]] ReaderSlot* claim_slot();
  [[nodiscard]] static ThreadState& thread_state();
  void retire_erased(SmallFunction<void()> deleter);

  void pin();
  void unpin();

  static constexpr std::size_t kMaxReaders = 512;

  std::atomic<std::uint64_t> epoch_{1};  // 0 is reserved for "idle"
  std::vector<ReaderSlot> slots_{kMaxReaders};
  mutable std::mutex retire_mu_;
  std::vector<Retired> retired_;
  std::atomic<std::uint64_t> reclaimed_{0};
};

// RAII reader pin on the global domain. Hold one across every access to an
// EpochPtr-published snapshot; nesting is free (inner guards are no-ops).
class EpochGuard {
 public:
  EpochGuard() { EpochDomain::global().pin(); }
  ~EpochGuard() { EpochDomain::global().unpin(); }
  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;
};

// An atomically published pointer to an immutable snapshot, with retired
// predecessors reclaimed through the global EpochDomain. The owner thread
// publishes; any thread holding an EpochGuard may load.
template <typename T>
class EpochPtr {
 public:
  EpochPtr() = default;
  ~EpochPtr() {
    // Retire rather than delete: a reader registered before destruction may
    // still be inside the final snapshot. The domain frees it at the next
    // reclaim (or at process exit).
    EpochDomain::global().retire(cur_.exchange(nullptr, std::memory_order_seq_cst));
  }
  EpochPtr(const EpochPtr&) = delete;
  EpochPtr& operator=(const EpochPtr&) = delete;

  // Current snapshot, or nullptr before the first publish. The caller must
  // hold an EpochGuard for the full lifetime of the returned pointer.
  [[nodiscard]] const T* load() const { return cur_.load(std::memory_order_seq_cst); }

  // Swap in `next` (ownership transfers to the EpochPtr) and retire the
  // previous snapshot. Write-side; concurrent publishes must be externally
  // serialized, concurrent readers are safe.
  void publish(const T* next) {
    const T* old = cur_.exchange(next, std::memory_order_seq_cst);
    auto& domain = EpochDomain::global();
    domain.retire(old);
    domain.try_reclaim();
  }

 private:
  std::atomic<const T*> cur_{nullptr};
};

}  // namespace greenps
