// Strong identifier types used across the system.
//
// Each entity family (brokers, publishers/advertisements, subscriptions,
// messages) gets its own integer-backed ID type so that mixing them up is a
// compile-time error rather than a silent bug.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

namespace greenps {

// CRTP-free tagged integer. `Tag` only disambiguates the type.
template <typename Tag>
class TypedId {
 public:
  using underlying_type = std::uint64_t;
  static constexpr underlying_type kInvalid = ~underlying_type{0};

  constexpr TypedId() = default;
  constexpr explicit TypedId(underlying_type v) : value_(v) {}

  [[nodiscard]] constexpr underlying_type value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr auto operator<=>(TypedId, TypedId) = default;

 private:
  underlying_type value_ = kInvalid;
};

struct BrokerTag {};
struct AdvTag {};
struct SubTag {};
struct ClientTag {};

// A broker process in the overlay.
using BrokerId = TypedId<BrokerTag>;
// A publisher is identified by its globally unique advertisement ID
// (Section III-B: "its globally unique advertisement ID ... serves to
// identify the publisher of every publication").
using AdvId = TypedId<AdvTag>;
// A subscription issued by a subscriber client.
using SubId = TypedId<SubTag>;
// A client process (publisher or subscriber endpoint).
using ClientId = TypedId<ClientTag>;

// Per-publisher publication sequence number ("message ID" in the paper):
// a plain integer counter appended to every publication.
using MessageSeq = std::int64_t;

template <typename Tag>
std::string to_string(TypedId<Tag> id) {
  return id.valid() ? std::to_string(id.value()) : std::string("<invalid>");
}

}  // namespace greenps

namespace std {
template <typename Tag>
struct hash<greenps::TypedId<Tag>> {
  size_t operator()(greenps::TypedId<Tag> id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
}  // namespace std
