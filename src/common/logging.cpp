#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <iostream>

#include "obs/clock.hpp"

namespace greenps::log {

namespace {
std::atomic<Level> g_level{Level::kWarn};

const char* level_name(Level level) {
  switch (level) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO ";
    case Level::kWarn: return "WARN ";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF  ";
  }
  return "?????";
}

// Timestamp prefix on the shared obs clock: wall seconds since process
// start, plus sim time when the caller is inside the event loop. Both use
// the same clock the tracer stamps spans with, so log lines correlate
// directly with trace events.
std::string clock_prefix() {
  char buf[64];
  const double wall_s = static_cast<double>(obs::wall_now_us()) / 1e6;
  if (const auto sim_us = obs::current_sim_time_us()) {
    std::snprintf(buf, sizeof(buf), " +%.3fs|sim %.3fs", wall_s,
                  static_cast<double>(*sim_us) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), " +%.3fs", wall_s);
  }
  return buf;
}
}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

void write(Level lvl, const std::string& message) {
  std::cerr << "[greenps " << level_name(lvl) << clock_prefix() << "] " << message
            << '\n';
}

}  // namespace greenps::log
