#include "common/epoch.hpp"

#include <cstdio>
#include <cstdlib>

namespace greenps {

EpochDomain& EpochDomain::global() {
  // Leaked on purpose: reader threads may outlive any static destruction
  // order we could arrange, and retired snapshots referenced from
  // thread-local state must stay reachable until process teardown.
  static EpochDomain* const domain = new EpochDomain();
  return *domain;
}

EpochDomain::EpochDomain() = default;

EpochDomain::~EpochDomain() {
  std::lock_guard<std::mutex> lock(retire_mu_);
  for (Retired& r : retired_) r.deleter();
  retired_.clear();
}

EpochDomain::ReaderSlot* EpochDomain::claim_slot() {
  for (ReaderSlot& s : slots_) {
    bool expected = false;
    if (s.claimed.compare_exchange_strong(expected, true,
                                          std::memory_order_acq_rel)) {
      return &s;
    }
  }
  std::fprintf(stderr,
               "greenps: EpochDomain reader-slot exhaustion (>%zu concurrent "
               "reader threads)\n",
               kMaxReaders);
  std::abort();
}

EpochDomain::ThreadState::~ThreadState() {
  if (slot != nullptr) {
    slot->epoch.store(0, std::memory_order_seq_cst);
    slot->claimed.store(false, std::memory_order_release);
  }
}

EpochDomain::ThreadState& EpochDomain::thread_state() {
  thread_local ThreadState state;
  return state;
}

void EpochDomain::pin() {
  ThreadState& st = thread_state();
  if (st.depth++ > 0) return;  // nested guard: outer pin already protects us
  if (st.slot == nullptr) st.slot = claim_slot();
  // seq_cst: the slot store must be globally visible before any snapshot
  // pointer load the guarded section performs, or a concurrent retire could
  // scan past this thread and free what it is about to read.
  st.slot->epoch.store(epoch_.load(std::memory_order_relaxed),
                       std::memory_order_seq_cst);
}

void EpochDomain::unpin() {
  ThreadState& st = thread_state();
  if (--st.depth > 0) return;
  st.slot->epoch.store(0, std::memory_order_seq_cst);
}

void EpochDomain::retire_erased(SmallFunction<void()> deleter) {
  // fetch_add returns the pre-increment epoch: every reader pinned when the
  // old snapshot was still reachable observed an epoch <= stamp, so the
  // grace period ends once no slot holds a value <= stamp.
  const std::uint64_t stamp = epoch_.fetch_add(1, std::memory_order_seq_cst);
  std::lock_guard<std::mutex> lock(retire_mu_);
  retired_.push_back(Retired{std::move(deleter), stamp});
}

void EpochDomain::try_reclaim() {
  std::vector<Retired> to_free;
  {
    std::lock_guard<std::mutex> lock(retire_mu_);
    if (retired_.empty()) return;
    std::uint64_t min_pinned = ~0ULL;
    for (const ReaderSlot& s : slots_) {
      const std::uint64_t e = s.epoch.load(std::memory_order_seq_cst);
      if (e != 0 && e < min_pinned) min_pinned = e;
    }
    std::size_t kept = 0;
    for (Retired& r : retired_) {
      if (r.stamp < min_pinned) {
        to_free.push_back(std::move(r));
      } else {
        retired_[kept++] = std::move(r);
      }
    }
    retired_.resize(kept);
    reclaimed_.fetch_add(to_free.size(), std::memory_order_relaxed);
  }
  // Deleters run outside the lock so a destructor that itself retires (a
  // snapshot owning another EpochPtr) cannot deadlock.
  for (Retired& r : to_free) r.deleter();
}

std::size_t EpochDomain::retired_pending() const {
  std::lock_guard<std::mutex> lock(retire_mu_);
  return retired_.size();
}

std::uint64_t EpochDomain::reclaimed_total() const {
  return reclaimed_.load(std::memory_order_relaxed);
}

}  // namespace greenps
