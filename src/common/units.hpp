// Physical units used by the load model and the simulator.
//
// Rates and bandwidths are kept as doubles with explicit unit suffixes in
// the names; simulated time is an integer microsecond count so event
// ordering is exact.
#pragma once

#include <cstdint>

namespace greenps {

// Simulated time in microseconds since simulation start.
using SimTime = std::int64_t;

constexpr SimTime kMicrosPerSecond = 1'000'000;

[[nodiscard]] constexpr SimTime seconds(double s) {
  return static_cast<SimTime>(s * static_cast<double>(kMicrosPerSecond));
}

[[nodiscard]] constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMicrosPerSecond);
}

// Messages per second.
using MsgRate = double;
// Kilobytes per second (the paper expresses broker capacity as total output
// bandwidth and subscription needs in kB/s).
using Bandwidth = double;
// Message payload size in kilobytes.
using MsgSize = double;

}  // namespace greenps
