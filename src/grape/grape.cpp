#include "grape/grape.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <optional>

#include "obs/trace.hpp"

namespace greenps {

namespace {

// BFS order and parents of `tree` rooted at `root`.
struct Rooted {
  std::vector<BrokerId> order;  // BFS order, root first
  std::unordered_map<BrokerId, BrokerId> parent;
  std::unordered_map<BrokerId, int> depth;
};

Rooted root_at(const Topology& tree, BrokerId root) {
  Rooted r;
  std::deque<BrokerId> queue{root};
  r.parent[root] = root;
  r.depth[root] = 0;
  while (!queue.empty()) {
    const BrokerId b = queue.front();
    queue.pop_front();
    r.order.push_back(b);
    for (const BrokerId n : tree.neighbors(b)) {
      if (!r.parent.contains(n)) {
        r.parent[n] = b;
        r.depth[n] = r.depth[b] + 1;
        queue.push_back(n);
      }
    }
  }
  return r;
}

}  // namespace

double grape_cost(const Topology& tree, BrokerId candidate, AdvId adv,
                  const std::unordered_map<BrokerId, SubscriptionProfile>& local_profiles,
                  const PublisherTable& table, GrapeMode mode) {
  const auto pub_it = table.find(adv);
  if (pub_it == table.end()) return 0.0;
  const PublisherProfile& pub = pub_it->second;
  const Rooted rooted = root_at(tree, candidate);

  if (mode == GrapeMode::kMinimizeDelay) {
    // Rate-weighted broker-hop distance to every sink.
    double cost = 0;
    for (const auto& [b, profile] : local_profiles) {
      const double f = profile.fraction_for(pub);
      if (f <= 0) continue;
      const auto dit = rooted.depth.find(b);
      if (dit == rooted.depth.end()) continue;
      cost += pub.rate_msg_s * f * static_cast<double>(dit->second);
    }
    return cost;
  }

  // kMinimizeLoad: each tree edge carries the union stream needed by the
  // subtree below it; sum those rates. Post-order accumulation of per-
  // subtree bit vectors for this publisher.
  std::unordered_map<BrokerId, std::optional<WindowedBitVector>> subtree;
  double cost = 0;
  for (auto it = rooted.order.rbegin(); it != rooted.order.rend(); ++it) {
    const BrokerId b = *it;
    std::optional<WindowedBitVector> acc;
    const auto lit = local_profiles.find(b);
    if (lit != local_profiles.end()) {
      if (const WindowedBitVector* v = lit->second.vector_for(adv)) {
        if (v->count() > 0) acc = *v;
      }
    }
    for (const BrokerId n : tree.neighbors(b)) {
      if (rooted.parent.at(n) != b || n == b) continue;  // only children
      const auto cit = subtree.find(n);
      if (cit == subtree.end() || !cit->second.has_value()) continue;
      if (!acc.has_value()) {
        acc = cit->second;
      } else {
        acc->merge(*cit->second);
      }
    }
    if (b != candidate && acc.has_value()) {
      // The edge (parent(b), b) carries the subtree's union stream.
      cost += pub.rate_msg_s * SubscriptionProfile::set_fraction(*acc, pub);
    }
    subtree.emplace(b, std::move(acc));
  }
  return cost;
}

GrapePlacement grape_place_publishers(
    const Topology& tree, const std::vector<GrapePublisher>& publishers,
    const std::unordered_map<BrokerId, SubscriptionProfile>& local_profiles,
    const PublisherTable& table, GrapeMode mode) {
  GREENPS_SPAN_TAGGED("grape.place", publishers.size());
  GrapePlacement placement;
  const std::vector<BrokerId> candidates = tree.brokers();
  assert(!candidates.empty());
  for (const GrapePublisher& p : publishers) {
    BrokerId best = candidates.front();
    double best_cost = grape_cost(tree, best, p.adv, local_profiles, table, mode);
    for (std::size_t i = 1; i < candidates.size(); ++i) {
      const double c = grape_cost(tree, candidates[i], p.adv, local_profiles, table, mode);
      if (c < best_cost) {
        best = candidates[i];
        best_cost = c;
      }
    }
    placement.broker_for[p.client] = best;
    placement.cost[p.client] = best_cost;
  }
  return placement;
}

}  // namespace greenps
