// GRAPE — publisher relocation (Cheung & Jacobsen [5], re-implemented).
//
// After Phase 3 all publishers sit at the tree root. GRAPE moves each
// publisher to the broker that minimizes, for that publisher's stream,
// either (a) total broker load — the publication rate crossing every
// overlay link, counting each link's traffic once — or (b) the
// rate-weighted hop distance to the subscribers that sink its publications
// (average delivery delay).
//
// All decisions are made from the per-broker subscription profiles, so
// GRAPE is as language-independent as the rest of the framework.
#pragma once

#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "overlay/topology.hpp"
#include "profile/publisher_profile.hpp"
#include "profile/subscription_profile.hpp"

namespace greenps {

enum class GrapeMode { kMinimizeLoad, kMinimizeDelay };

struct GrapePublisher {
  ClientId client;
  AdvId adv;
};

struct GrapePlacement {
  std::unordered_map<ClientId, BrokerId> broker_for;
  // Objective value per publisher at the chosen broker (for diagnostics).
  std::unordered_map<ClientId, double> cost;
};

// `local_profiles` maps each tree broker to the OR of the subscription
// profiles it serves locally (brokers serving nothing may be absent).
[[nodiscard]] GrapePlacement grape_place_publishers(
    const Topology& tree, const std::vector<GrapePublisher>& publishers,
    const std::unordered_map<BrokerId, SubscriptionProfile>& local_profiles,
    const PublisherTable& table, GrapeMode mode);

// Cost of placing one publisher at `candidate` (exposed for tests).
[[nodiscard]] double grape_cost(const Topology& tree, BrokerId candidate, AdvId adv,
                                const std::unordered_map<BrokerId, SubscriptionProfile>&
                                    local_profiles,
                                const PublisherTable& table, GrapeMode mode);

}  // namespace greenps
