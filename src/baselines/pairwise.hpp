// The pairwise clustering baselines (Riabov et al. [24], as extended in
// Section VI):
//
//   PAIRWISE-K — pairwise clustering (XOR closeness) into K clusters, where
//                K is the cluster count CRAM-XOR computed; clusters are
//                assigned to random brokers with no capacity awareness.
//   PAIRWISE-N — K = number of brokers; one cluster per broker.
//
// Both derivatives use bit vectors instead of the subscription language and
// build their overlay with the AUTOMATIC (random tree) approach.
#pragma once

#include "alloc/allocation.hpp"
#include "common/rng.hpp"
#include "profile/closeness.hpp"

namespace greenps {

// Classic pairwise agglomeration: repeatedly merge the closest pair of
// clusters (requires the cluster count `k` a priori — the limitation the
// paper contrasts CRAM against).
[[nodiscard]] std::vector<SubUnit> pairwise_cluster(std::vector<SubUnit> units,
                                                    std::size_t k,
                                                    const PublisherTable& table,
                                                    ClosenessMetric metric = ClosenessMetric::kXor);

// PAIRWISE-K: cluster into k groups, then place each cluster on a uniformly
// random broker (capacity-unaware; a broker may receive several clusters).
[[nodiscard]] Allocation pairwise_k_allocate(const std::vector<AllocBroker>& pool,
                                             std::vector<SubUnit> units, std::size_t k,
                                             const PublisherTable& table, Rng& rng);

// PAIRWISE-N: cluster into one group per broker and assign cluster i to
// broker i.
[[nodiscard]] Allocation pairwise_n_allocate(const std::vector<AllocBroker>& pool,
                                             std::vector<SubUnit> units,
                                             const PublisherTable& table, Rng& rng);

}  // namespace greenps
