#include "baselines/pairwise.hpp"

#include <algorithm>
#include <cassert>

namespace greenps {

std::vector<SubUnit> pairwise_cluster(std::vector<SubUnit> units, std::size_t k,
                                      const PublisherTable& table, ClosenessMetric metric) {
  if (k == 0) k = 1;
  // Best-partner cache to avoid a full O(n^2) rescan per merge.
  struct Cand {
    std::size_t partner = 0;
    double closeness = -1;
  };
  std::vector<bool> alive(units.size(), true);
  std::vector<Cand> best(units.size());
  auto recompute = [&](std::size_t i) {
    best[i] = Cand{};
    for (std::size_t j = 0; j < units.size(); ++j) {
      if (j == i || !alive[j]) continue;
      const double c = closeness(metric, units[i].profile, units[j].profile);
      if (c > best[i].closeness) best[i] = Cand{j, c};
    }
  };
  std::size_t live = units.size();
  for (std::size_t i = 0; i < units.size(); ++i) recompute(i);

  while (live > k) {
    // Pick the globally closest live pair.
    std::size_t gi = units.size();
    for (std::size_t i = 0; i < units.size(); ++i) {
      if (!alive[i] || best[i].closeness < 0) continue;
      if (gi == units.size() || best[i].closeness > best[gi].closeness) gi = i;
    }
    if (gi == units.size()) break;  // no partners left (all singletons dead)
    const std::size_t gj = best[gi].partner;
    assert(alive[gj]);
    units[gi] = cluster_units(units[gi], units[gj], table);
    alive[gj] = false;
    --live;
    // Refresh caches touching gi/gj.
    recompute(gi);
    for (std::size_t i = 0; i < units.size(); ++i) {
      if (!alive[i] || i == gi) continue;
      if (best[i].partner == gj || best[i].partner == gi) {
        recompute(i);
      } else {
        const double c = closeness(metric, units[i].profile, units[gi].profile);
        if (c > best[i].closeness) best[i] = Cand{gi, c};
      }
    }
  }

  std::vector<SubUnit> out;
  for (std::size_t i = 0; i < units.size(); ++i) {
    if (alive[i]) out.push_back(std::move(units[i]));
  }
  return out;
}

namespace {

Allocation assign_clusters(const std::vector<AllocBroker>& pool,
                           std::vector<SubUnit> clusters, const PublisherTable& table,
                           const std::vector<std::size_t>& broker_for_cluster) {
  Allocation result;
  std::vector<BrokerLoad> loads;
  loads.reserve(pool.size());
  for (const AllocBroker& b : pool) loads.emplace_back(b);
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    // Capacity-unaware by design: add() without fits().
    loads[broker_for_cluster[i]].add(clusters[i], table);
  }
  for (BrokerLoad& l : loads) {
    if (!l.empty()) result.brokers.push_back(std::move(l));
  }
  result.success = true;
  return result;
}

}  // namespace

Allocation pairwise_k_allocate(const std::vector<AllocBroker>& pool,
                               std::vector<SubUnit> units, std::size_t k,
                               const PublisherTable& table, Rng& rng) {
  auto clusters = pairwise_cluster(std::move(units), k, table);
  std::vector<std::size_t> broker_for_cluster;
  broker_for_cluster.reserve(clusters.size());
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    broker_for_cluster.push_back(rng.index(pool.size()));
  }
  return assign_clusters(pool, std::move(clusters), table, broker_for_cluster);
}

Allocation pairwise_n_allocate(const std::vector<AllocBroker>& pool,
                               std::vector<SubUnit> units, const PublisherTable& table,
                               Rng& rng) {
  auto clusters = pairwise_cluster(std::move(units), pool.size(), table);
  // One cluster per broker; a random broker permutation keeps the mapping
  // unbiased when there are fewer clusters than brokers.
  std::vector<std::size_t> perm(pool.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  rng.shuffle(perm);
  std::vector<std::size_t> broker_for_cluster;
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    broker_for_cluster.push_back(perm[i % perm.size()]);
  }
  return assign_clusters(pool, std::move(clusters), table, broker_for_cluster);
}

}  // namespace greenps
