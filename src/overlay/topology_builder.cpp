#include "overlay/topology_builder.hpp"

#include <cassert>

namespace greenps {

Topology build_manual_tree(const std::vector<BrokerId>& brokers, std::size_t fanout) {
  assert(fanout >= 1);
  Topology t;
  for (std::size_t i = 0; i < brokers.size(); ++i) {
    t.add_broker(brokers[i]);
    if (i > 0) t.add_link(brokers[(i - 1) / fanout], brokers[i]);
  }
  return t;
}

Topology build_random_tree(const std::vector<BrokerId>& brokers, Rng& rng) {
  Topology t;
  for (std::size_t i = 0; i < brokers.size(); ++i) {
    t.add_broker(brokers[i]);
    if (i > 0) t.add_link(brokers[rng.index(i)], brokers[i]);
  }
  return t;
}

Topology build_star(BrokerId center, const std::vector<BrokerId>& leaves) {
  Topology t;
  t.add_broker(center);
  for (const BrokerId b : leaves) {
    if (b != center) t.add_link(center, b);
  }
  return t;
}

}  // namespace greenps
