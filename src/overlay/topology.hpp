// Broker overlay graph.
//
// The deployed overlays in the paper are trees (acyclic overlays are what
// filter-based routing assumes), but the structure is kept as a general
// undirected graph so intermediate states and invalid configurations can be
// represented and checked.
#pragma once

#include <cstddef>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"

namespace greenps {

class Topology {
 public:
  void add_broker(BrokerId b);
  void remove_broker(BrokerId b);
  [[nodiscard]] bool has_broker(BrokerId b) const;

  void add_link(BrokerId a, BrokerId b);
  void remove_link(BrokerId a, BrokerId b);
  [[nodiscard]] bool has_link(BrokerId a, BrokerId b) const;

  [[nodiscard]] const std::vector<BrokerId>& neighbors(BrokerId b) const;
  [[nodiscard]] std::vector<BrokerId> brokers() const;
  [[nodiscard]] std::size_t broker_count() const { return adj_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_ ; }

  [[nodiscard]] bool connected() const;
  // Connected and |E| = |V| - 1.
  [[nodiscard]] bool is_tree() const;

  // Hop distances from `from` to every reachable broker.
  [[nodiscard]] std::unordered_map<BrokerId, int> distances_from(BrokerId from) const;

  // Unique path in a tree (BFS parent chase); nullopt if unreachable.
  [[nodiscard]] std::optional<std::vector<BrokerId>> path(BrokerId from, BrokerId to) const;

 private:
  std::unordered_map<BrokerId, std::vector<BrokerId>> adj_;
  std::size_t links_ = 0;
};

}  // namespace greenps
