#include "overlay/topology.hpp"

#include <algorithm>
#include <cassert>
#include <deque>

namespace greenps {

namespace {
const std::vector<BrokerId> kEmpty;
}

void Topology::add_broker(BrokerId b) {
  adj_.try_emplace(b);
}

void Topology::remove_broker(BrokerId b) {
  const auto it = adj_.find(b);
  if (it == adj_.end()) return;
  for (const BrokerId n : it->second) {
    auto& back = adj_[n];
    back.erase(std::remove(back.begin(), back.end(), b), back.end());
    --links_;
  }
  adj_.erase(it);
}

bool Topology::has_broker(BrokerId b) const { return adj_.contains(b); }

void Topology::add_link(BrokerId a, BrokerId b) {
  assert(a != b);
  add_broker(a);
  add_broker(b);
  if (has_link(a, b)) return;
  adj_[a].push_back(b);
  adj_[b].push_back(a);
  ++links_;
}

void Topology::remove_link(BrokerId a, BrokerId b) {
  if (!has_link(a, b)) return;
  auto& va = adj_[a];
  va.erase(std::remove(va.begin(), va.end(), b), va.end());
  auto& vb = adj_[b];
  vb.erase(std::remove(vb.begin(), vb.end(), a), vb.end());
  --links_;
}

bool Topology::has_link(BrokerId a, BrokerId b) const {
  const auto it = adj_.find(a);
  if (it == adj_.end()) return false;
  return std::find(it->second.begin(), it->second.end(), b) != it->second.end();
}

const std::vector<BrokerId>& Topology::neighbors(BrokerId b) const {
  const auto it = adj_.find(b);
  return it == adj_.end() ? kEmpty : it->second;
}

std::vector<BrokerId> Topology::brokers() const {
  std::vector<BrokerId> out;
  out.reserve(adj_.size());
  for (const auto& [b, nbrs] : adj_) {
    (void)nbrs;
    out.push_back(b);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool Topology::connected() const {
  if (adj_.empty()) return true;
  const auto dist = distances_from(adj_.begin()->first);
  return dist.size() == adj_.size();
}

bool Topology::is_tree() const {
  if (adj_.empty()) return true;
  return connected() && links_ == adj_.size() - 1;
}

std::unordered_map<BrokerId, int> Topology::distances_from(BrokerId from) const {
  std::unordered_map<BrokerId, int> dist;
  if (!has_broker(from)) return dist;
  std::deque<BrokerId> queue{from};
  dist[from] = 0;
  while (!queue.empty()) {
    const BrokerId b = queue.front();
    queue.pop_front();
    for (const BrokerId n : neighbors(b)) {
      if (!dist.contains(n)) {
        dist[n] = dist[b] + 1;
        queue.push_back(n);
      }
    }
  }
  return dist;
}

std::optional<std::vector<BrokerId>> Topology::path(BrokerId from, BrokerId to) const {
  if (!has_broker(from) || !has_broker(to)) return std::nullopt;
  std::unordered_map<BrokerId, BrokerId> parent;
  std::deque<BrokerId> queue{from};
  parent[from] = from;
  while (!queue.empty() && !parent.contains(to)) {
    const BrokerId b = queue.front();
    queue.pop_front();
    for (const BrokerId n : neighbors(b)) {
      if (!parent.contains(n)) {
        parent[n] = b;
        queue.push_back(n);
      }
    }
  }
  if (!parent.contains(to)) return std::nullopt;
  std::vector<BrokerId> rev{to};
  while (rev.back() != from) rev.push_back(parent[rev.back()]);
  std::reverse(rev.begin(), rev.end());
  return rev;
}

}  // namespace greenps
