// Builders for the two baseline overlays of Section VI:
//
//   MANUAL    — fan-out-2 tree "to minimize the chance of overloading
//               internal brokers"; under heterogeneity the most resourceful
//               brokers sit at the top of the tree.
//   AUTOMATIC — clients placed and overlay built randomly (random tree).
#pragma once

#include "common/rng.hpp"
#include "overlay/topology.hpp"

namespace greenps {

// Balanced tree with the given fan-out; brokers[0] is the root and levels
// fill in order, so passing brokers sorted by descending capacity puts the
// most resourceful brokers at the top (the heterogeneous MANUAL layout).
[[nodiscard]] Topology build_manual_tree(const std::vector<BrokerId>& brokers,
                                         std::size_t fanout = 2);

// Uniformly random tree: each broker after the first links to a uniformly
// random predecessor.
[[nodiscard]] Topology build_random_tree(const std::vector<BrokerId>& brokers, Rng& rng);

// Star topology (every broker linked to `center`) — used by overlay
// construction fallbacks and tests.
[[nodiscard]] Topology build_star(BrokerId center, const std::vector<BrokerId>& leaves);

}  // namespace greenps
