#include "panda/panda.hpp"

#include <algorithm>
#include <charconv>
#include <sstream>

#include "language/parser.hpp"

namespace greenps {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& why) {
  throw PandaError("panda: line " + std::to_string(line) + ": " + why);
}

// Split one line into whitespace-separated tokens, except that the value of
// a key=... pair runs to the end of the line once the key is `filter`
// (filters contain spaces only inside quotes, but commas are common).
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) {
    if (tok.rfind("filter=", 0) == 0) {
      std::string rest;
      std::getline(is, rest);
      tokens.push_back(tok + rest);
      break;
    }
    tokens.push_back(tok);
  }
  return tokens;
}

struct KeyValues {
  std::unordered_map<std::string, std::string> kv;
  [[nodiscard]] const std::string* find(const std::string& key) const {
    const auto it = kv.find(key);
    return it == kv.end() ? nullptr : &it->second;
  }
};

KeyValues parse_kv(const std::vector<std::string>& tokens, std::size_t from,
                   std::size_t line) {
  KeyValues out;
  for (std::size_t i = from; i < tokens.size(); ++i) {
    const auto eq = tokens[i].find('=');
    if (eq == std::string::npos) fail(line, "expected key=value, got '" + tokens[i] + "'");
    out.kv[tokens[i].substr(0, eq)] = tokens[i].substr(eq + 1);
  }
  return out;
}

double parse_number(const std::string& s, std::size_t line, const std::string& what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size()) fail(line, "bad " + what + " '" + s + "'");
    return v;
  } catch (const std::invalid_argument&) {
    fail(line, "bad " + what + " '" + s + "'");
  } catch (const std::out_of_range&) {
    fail(line, what + " out of range '" + s + "'");
  }
}

}  // namespace

std::string PandaTopology::first_ordering_violation() const {
  double last_broker_start = 0;
  for (const auto& name : broker_names) {
    const auto it = start_times.find(name);
    if (it != start_times.end()) last_broker_start = std::max(last_broker_start, it->second);
  }
  for (const auto& [name, start] : start_times) {
    const bool is_broker =
        std::find(broker_names.begin(), broker_names.end(), name) != broker_names.end();
    if (!is_broker && start < last_broker_start) return name;
  }
  return {};
}

PandaTopology parse_panda(std::string_view text) {
  PandaTopology topo;
  std::unordered_map<std::string, BrokerId> brokers;
  std::unordered_map<std::string, bool> names;  // all entity names
  std::uint64_t next_broker = 0;
  std::uint64_t next_client = 0;
  std::uint64_t next_sub = 0;
  std::uint64_t next_adv = 0;

  std::istringstream is{std::string(text)};
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& kind = tokens[0];

    auto declare = [&](const std::string& name) {
      if (!names.emplace(name, true).second) fail(line_no, "duplicate name '" + name + "'");
    };
    auto broker_ref = [&](const std::string& name) -> BrokerId {
      const auto it = brokers.find(name);
      if (it == brokers.end()) fail(line_no, "unknown broker '" + name + "'");
      return it->second;
    };
    auto record_start = [&](const std::string& name, const KeyValues& kv) {
      if (const auto* s = kv.find("start")) {
        topo.start_times[name] = parse_number(*s, line_no, "start time");
      }
    };

    if (kind == "broker") {
      if (tokens.size() < 2) fail(line_no, "broker needs a name");
      const std::string& name = tokens[1];
      declare(name);
      const KeyValues kv = parse_kv(tokens, 2, line_no);
      BrokerCapacity cap;
      if (const auto* v = kv.find("bw")) {
        cap.out_bw_kb_s = parse_number(*v, line_no, "bandwidth");
      }
      if (const auto* v = kv.find("delay-base")) {
        cap.delay.base_s = parse_number(*v, line_no, "delay-base");
      }
      if (const auto* v = kv.find("delay-per-sub")) {
        cap.delay.per_sub_s = parse_number(*v, line_no, "delay-per-sub");
      }
      const BrokerId id{next_broker++};
      brokers.emplace(name, id);
      topo.broker_names.push_back(name);
      topo.deployment.topology.add_broker(id);
      topo.deployment.capacities.emplace(id, cap);
      record_start(name, kv);
    } else if (kind == "link") {
      if (tokens.size() != 3) fail(line_no, "link needs exactly two broker names");
      const BrokerId a = broker_ref(tokens[1]);
      const BrokerId b = broker_ref(tokens[2]);
      if (a == b) fail(line_no, "self-link on '" + tokens[1] + "'");
      topo.deployment.topology.add_link(a, b);
    } else if (kind == "publisher") {
      if (tokens.size() < 2) fail(line_no, "publisher needs a name");
      declare(tokens[1]);
      const KeyValues kv = parse_kv(tokens, 2, line_no);
      const auto* broker = kv.find("broker");
      const auto* symbol = kv.find("symbol");
      if (broker == nullptr || symbol == nullptr) {
        fail(line_no, "publisher needs broker= and symbol=");
      }
      PublisherSpec p;
      p.client = ClientId{next_client++};
      p.adv = AdvId{next_adv++};
      p.symbol = *symbol;
      p.home = broker_ref(*broker);
      if (const auto* r = kv.find("rate")) {
        p.rate_msg_s = parse_number(*r, line_no, "rate");
      }
      Filter f;
      f.add({"class", Op::kEq, Value(std::string("STOCK"))});
      f.add({"symbol", Op::kEq, Value(*symbol)});
      p.adv_filter = std::move(f);
      topo.deployment.publishers.push_back(std::move(p));
      record_start(tokens[1], kv);
    } else if (kind == "subscriber") {
      if (tokens.size() < 2) fail(line_no, "subscriber needs a name");
      declare(tokens[1]);
      const KeyValues kv = parse_kv(tokens, 2, line_no);
      const auto* broker = kv.find("broker");
      const auto* filter = kv.find("filter");
      if (broker == nullptr || filter == nullptr) {
        fail(line_no, "subscriber needs broker= and filter=");
      }
      SubscriberSpec s;
      s.client = ClientId{next_client++};
      s.sub = SubId{next_sub++};
      s.home = broker_ref(*broker);
      try {
        s.filter = parse_filter(*filter);
      } catch (const ParseError& e) {
        fail(line_no, e.what());
      }
      topo.deployment.subscribers.push_back(std::move(s));
      record_start(tokens[1], kv);
    } else {
      fail(line_no, "unknown directive '" + kind + "'");
    }
  }
  return topo;
}

std::string write_panda(const Deployment& deployment) {
  std::ostringstream os;
  os << "# greenps topology file\n";
  const auto brokers = deployment.topology.brokers();
  auto bname = [](BrokerId b) { return "B" + std::to_string(b.value()); };
  for (const BrokerId b : brokers) {
    os << "broker " << bname(b);
    const auto it = deployment.capacities.find(b);
    if (it != deployment.capacities.end()) {
      os << " bw=" << it->second.out_bw_kb_s << " delay-base=" << it->second.delay.base_s
         << " delay-per-sub=" << it->second.delay.per_sub_s;
    }
    os << "\n";
  }
  for (const BrokerId a : brokers) {
    for (const BrokerId b : deployment.topology.neighbors(a)) {
      if (a < b) os << "link " << bname(a) << " " << bname(b) << "\n";
    }
  }
  for (const auto& p : deployment.publishers) {
    os << "publisher P" << p.client.value() << " broker=" << bname(p.home)
       << " symbol=" << p.symbol << " rate=" << p.rate_msg_s << "\n";
  }
  for (const auto& s : deployment.subscribers) {
    os << "subscriber C" << s.client.value() << " broker=" << bname(s.home)
       << " filter=" << s.filter.to_string() << "\n";
  }
  return os.str();
}

}  // namespace greenps
