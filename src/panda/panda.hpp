// PANDA — PADRES Automated Node Deployer and Administrator (Section VI-A).
//
// "This tool allows us to specify the experiment setup within a text
//  formatted topology file such as the time and nodes at which to run
//  brokers and clients, as well as any process specific runtime parameters
//  such as the neighbors for brokers."
//
// This module implements the topology-file format and turns a parsed file
// into a Deployment (and back), so experiments can be described as data:
//
//   # comment
//   broker   B0 bw=300 delay-base=20e-6 delay-per-sub=0.5e-6 start=0
//   link     B0 B1
//   publisher P0 broker=B0 symbol=AAA rate=1.1667 start=10
//   subscriber C0 broker=B1 start=12 filter=[class,=,'STOCK'],[symbol,=,'AAA']
//
// Start times order the deployment (brokers and links are verified before
// clients, as PANDA does); the simulator itself starts everything at once.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/simulation.hpp"

namespace greenps {

class PandaError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct PandaTopology {
  Deployment deployment;
  // Declared start times (seconds), keyed by entity name.
  std::unordered_map<std::string, double> start_times;
  // Names in declaration order (useful for diagnostics and round-trips).
  std::vector<std::string> broker_names;

  // PANDA "verifies brokers and overlay links to be up and running before
  // clients are deployed": all client start times must follow every broker
  // start time. Returns the offending entity name, or empty if valid.
  [[nodiscard]] std::string first_ordering_violation() const;
};

// Parse a topology file. Throws PandaError with a line number on malformed
// input, unknown references, duplicate names, or self-links.
[[nodiscard]] PandaTopology parse_panda(std::string_view text);

// Render a deployment back into the topology-file format (stable order:
// brokers, links, publishers, subscribers).
[[nodiscard]] std::string write_panda(const Deployment& deployment);

}  // namespace greenps
