// CRAM — Clustering with Resource Awareness and Minimization (Section IV-C).
//
// Repeatedly clusters the closest pair of subscription groups (by one of
// the INTERSECT/XOR/IOS/IOU closeness metrics), re-running BIN PACKING as
// the allocation test after every clustering, and returns the last
// successful allocation. Three optimizations, each individually toggleable
// for the ablation experiments:
//
//   1. GIF grouping      — units with identical bit vectors form one group
//   2. poset pruning     — pair search walks a containment poset, pruning
//                          empty-relation subtrees (impossible under XOR)
//   3. one-to-many       — an intersect pair first tries clustering each
//                          side with its covered GIFs (greedy set cover)
#pragma once

#include <cstdint>
#include <limits>

#include "alloc/allocation.hpp"
#include "alloc/gif.hpp"
#include "profile/closeness.hpp"

namespace greenps {

struct CramOptions {
  ClosenessMetric metric = ClosenessMetric::kIos;
  bool gif_grouping = true;   // optimization 1
  bool poset_pruning = true;  // optimization 2
  bool one_to_many = true;    // optimization 3
  std::size_t max_iterations = std::numeric_limits<std::size_t>::max();
  // Worker threads for the best-partner search and the speculative k-search
  // (the caller counts as one): 0 = hardware_concurrency. Results are
  // bit-identical for every thread count — the searches read a snapshot and
  // merge deterministically. GREENPS_CRAM_THREADS, when set, overrides this.
  std::size_t threads = 0;
  // Checkpoint interval, in units, of the incremental allocation probe
  // (CheckpointedFirstFit): 0 resolves to ~initial_units/64,
  // CheckpointedFirstFit::kNoCheckpoints disables resume so every probe
  // packs from scratch. Any value yields bit-identical allocations; only
  // the amount of packing work skipped changes.
  std::size_t probe_checkpoint_stride = 0;
  // Drift re-baselining for IncrementalCram sessions: after this many
  // apply() deltas, the session folds a from-scratch convergence over the
  // live population into itself, resetting accumulated clustering drift
  // (incremental reconvergence never revisits untouched neighborhoods, so
  // drift vs from-scratch grows with delta count). 0 = never rebaseline.
  // GREENPS_CRAM_REBASELINE, when set, overrides this.
  std::size_t rebaseline_interval = 0;
};

struct CramStats {
  std::size_t initial_units = 0;
  std::size_t gif_count = 0;                // after grouping
  std::size_t closeness_computations = 0;
  // Decision-path allocation probes (BIN PACKING feasibility tests). Does
  // not include speculative probes, so it is identical for every thread
  // count and checkpoint stride.
  std::size_t allocation_runs = 0;
  std::size_t clusterings_applied = 0;
  std::size_t clusterings_rejected = 0;     // failed allocation test
  std::size_t one_to_many_applied = 0;
  std::size_t iterations = 0;
  std::size_t final_units = 0;              // clusters in the result
  std::size_t threads_used = 1;             // resolved pair-search thread count
  // Checkpoint-resume effectiveness, summed over base rebuilds and
  // decision-path probes: units walked through the allocation test vs.
  // units whose packing a checkpoint stood in for. packed + skipped is
  // invariant across strides and thread counts; the packed:skipped ratio is
  // the work the incremental probe avoids.
  std::size_t probe_units_packed = 0;
  std::size_t probe_units_skipped = 0;
  // Re-packs of the committed unit set (each resumes from the divergence
  // position of the committed overlay, so it is mostly checkpoint replay).
  std::size_t base_rebuilds = 0;
  // k-search probes evaluated ahead of need on worker threads that the
  // decision path then never consumed. Excluded from every other counter;
  // the only stat that may vary with the thread count.
  std::size_t speculative_probes = 0;
  double poset_build_seconds = 0;
  double probe_seconds = 0;        // packing: rebuilds + probes (incl. speculative)
  double pair_search_seconds = 0;  // best-partner search (refresh_dirty)
  double total_seconds = 0;
};

// Unordered pair of GIF ids, used as the clustering-blacklist key. Ids are
// full 64-bit values and `next_id_` grows past the initial GIF count, so the
// key must keep both ids intact (a 64-bit `(a << 32) ^ b` fold silently
// discards high bits and lets distinct pairs collide).
struct GifPairKey {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  friend bool operator==(const GifPairKey&, const GifPairKey&) = default;
};

[[nodiscard]] GifPairKey make_gif_pair_key(std::uint64_t a, std::uint64_t b);

struct GifPairKeyHash {
  [[nodiscard]] std::size_t operator()(const GifPairKey& k) const;
};

struct CramResult {
  Allocation allocation;
  CramStats stats;
};

// Normalize an options struct the way cram_allocate does before running:
// poset pruning is forced off without GIF grouping, and GREENPS_CRAM_THREADS
// (when set) overrides the thread count. IncrementalCram applies the same
// resolution so a delta session and a from-scratch run see identical knobs.
[[nodiscard]] CramOptions resolve_cram_options(const CramOptions& options);

[[nodiscard]] CramResult cram_allocate(std::vector<AllocBroker> pool,
                                       std::vector<SubUnit> units,
                                       const PublisherTable& table,
                                       const CramOptions& options = {});

}  // namespace greenps
