// CRAM — Clustering with Resource Awareness and Minimization (Section IV-C).
//
// Repeatedly clusters the closest pair of subscription groups (by one of
// the INTERSECT/XOR/IOS/IOU closeness metrics), re-running BIN PACKING as
// the allocation test after every clustering, and returns the last
// successful allocation. Three optimizations, each individually toggleable
// for the ablation experiments:
//
//   1. GIF grouping      — units with identical bit vectors form one group
//   2. poset pruning     — pair search walks a containment poset, pruning
//                          empty-relation subtrees (impossible under XOR)
//   3. one-to-many       — an intersect pair first tries clustering each
//                          side with its covered GIFs (greedy set cover)
#pragma once

#include <limits>

#include "alloc/allocation.hpp"
#include "alloc/gif.hpp"
#include "profile/closeness.hpp"

namespace greenps {

struct CramOptions {
  ClosenessMetric metric = ClosenessMetric::kIos;
  bool gif_grouping = true;   // optimization 1
  bool poset_pruning = true;  // optimization 2
  bool one_to_many = true;    // optimization 3
  std::size_t max_iterations = std::numeric_limits<std::size_t>::max();
};

struct CramStats {
  std::size_t initial_units = 0;
  std::size_t gif_count = 0;                // after grouping
  std::size_t closeness_computations = 0;
  std::size_t allocation_runs = 0;          // BIN PACKING invocations
  std::size_t clusterings_applied = 0;
  std::size_t clusterings_rejected = 0;     // failed allocation test
  std::size_t one_to_many_applied = 0;
  std::size_t iterations = 0;
  std::size_t final_units = 0;              // clusters in the result
  double poset_build_seconds = 0;
  double total_seconds = 0;
};

struct CramResult {
  Allocation allocation;
  CramStats stats;
};

[[nodiscard]] CramResult cram_allocate(std::vector<AllocBroker> pool,
                                       std::vector<SubUnit> units,
                                       const PublisherTable& table,
                                       const CramOptions& options = {});

}  // namespace greenps
