#include "alloc/cram.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "alloc/bin_packing.hpp"
#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "poset/poset.hpp"

namespace greenps {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

GifPairKey make_gif_pair_key(std::uint64_t a, std::uint64_t b) {
  if (a > b) std::swap(a, b);
  return GifPairKey{a, b};
}

std::size_t GifPairKeyHash::operator()(const GifPairKey& k) const {
  return static_cast<std::size_t>(splitmix64(k.lo) ^ splitmix64(~k.hi));
}

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

class CramRun {
 public:
  CramRun(std::vector<AllocBroker> pool, std::vector<SubUnit> units,
          const PublisherTable& table, const CramOptions& opts)
      : pool_(std::move(pool)), table_(table), opts_(opts),
        threads_(ThreadPool::resolve(opts.threads)) {
    sort_by_capacity_desc(pool_);
    stats_.initial_units = units.size();
    stats_.threads_used = threads_;
    std::vector<Gif> grouped = opts_.gif_grouping ? group_identical_filters(std::move(units))
                                                  : singleton_gifs(std::move(units));
    stats_.gif_count = grouped.size();
    next_id_ = grouped.size();
    for (auto& g : grouped) {
      const std::uint64_t id = g.id;
      // Warm the cardinality cache now: the parallel pair search reads gif
      // profiles concurrently and pairwise_counts consults the cache, so it
      // must be filled before the profile is ever shared across threads.
      (void)g.profile.cardinality();
      gifs_.emplace(id, std::move(g));
    }
  }

  CramResult run() {
    const auto t0 = Clock::now();
    // Initialization: allocate without clustering; abort if impossible.
    const PackProbe init = probe_allocation();
    if (!init.success) {
      CramResult r;
      r.stats = stats_;
      r.stats.total_seconds = seconds_since(t0);
      return r;
    }
    best_brokers_ = init.brokers_used;

    // Build the poset over GIFs (optimization 2).
    const auto tp = Clock::now();
    if (opts_.poset_pruning) {
      for (const auto& [id, g] : gifs_) {
        const auto ins = poset_.insert(g.profile, id);
        assert(ins.inserted || !opts_.gif_grouping);
        node_of_[id] = ins.node;
      }
    }
    stats_.poset_build_seconds = seconds_since(tp);

    // Prime the best-partner cache.
    for (const auto& [id, g] : gifs_) {
      (void)g;
      dirty_.insert(id);
    }

    while (stats_.iterations < opts_.max_iterations) {
      refresh_dirty();
      const auto pick = pick_global_best();
      if (!pick) break;
      ++stats_.iterations;
      const auto [gid, cand] = *pick;
      if (gid == cand.partner) {
        try_self_cluster(gid);
      } else {
        try_pair(gid, cand.partner, cand.closeness);
      }
    }

    CramResult r;
    // The pool state always matches the last successful allocation (failed
    // clusterings are never committed), so one final packing materializes it.
    r.allocation = bin_packing_allocate(pool_, flatten(), table_);
    assert(r.allocation.success);
    r.stats = stats_;
    r.stats.final_units = r.allocation.unit_count();
    r.stats.total_seconds = seconds_since(t0);
    return r;
  }

 private:
  struct Candidate {
    std::uint64_t partner = 0;
    double closeness = 0;
  };

  // Everything one best-partner search produces. Searches are pure reads of
  // the run state, so the dirty set can be refreshed in parallel; outcomes
  // are merged after the join in ascending-id order, which makes the result
  // bit-identical for every thread count.
  struct SearchOutcome {
    std::optional<Candidate> best;
    // (other, closeness) pairs that beat `other`'s cached candidate at
    // search time — the symmetric-improvement propagation, deferred.
    std::vector<std::pair<std::uint64_t, double>> improvements;
    std::size_t closeness_computations = 0;
  };

  // ---- bookkeeping ----

  Gif& gif(std::uint64_t id) {
    const auto it = gifs_.find(id);
    assert(it != gifs_.end());
    return it->second;
  }

  [[nodiscard]] bool blacklisted(std::uint64_t a, std::uint64_t b) const {
    return blacklist_.contains(make_gif_pair_key(a, b));
  }
  void add_blacklist(std::uint64_t a, std::uint64_t b) {
    blacklist_.insert(make_gif_pair_key(a, b));
    dirty_.insert(a);
    dirty_.insert(b);
  }

  std::vector<SubUnit> flatten() const {
    std::vector<SubUnit> all;
    for (const auto& [id, g] : gifs_) {
      (void)id;
      all.insert(all.end(), g.units.begin(), g.units.end());
    }
    return all;
  }

  // ---- allocation probes ----
  //
  // CRAM's allocation test is a copy-free BIN PACKING feasibility probe.
  // The sorted unit-pointer vector it packs is cached across probes and
  // invalidated only when a clustering actually commits; tentative
  // clusterings are probed through an overlay (cached vector minus the
  // units being merged, plus the merged unit spliced in at its sort
  // position) without mutating any GIF, which removes the rebuild+re-sort
  // and the save/restore GIF copies from every rejected or probing step.

  void invalidate_probe_units() { probe_units_valid_ = false; }

  const std::vector<const SubUnit*>& probe_base() {
    if (!probe_units_valid_) {
      probe_units_.clear();
      std::size_t total = 0;
      for (const auto& [id, g] : gifs_) {
        (void)id;
        total += g.units.size();
      }
      probe_units_.reserve(total);
      for (const auto& [id, g] : gifs_) {
        (void)id;
        for (const SubUnit& u : g.units) probe_units_.push_back(&u);
      }
      sort_units_by_bandwidth_desc(probe_units_);
      probe_units_valid_ = true;
    }
    return probe_units_;
  }

  // Broker minimization is CRAM's primary objective, so a clustering whose
  // re-packed allocation needs MORE brokers than the last recorded scheme
  // also fails (clusters are indivisible and can fragment FFD packing).
  PackProbe finish_probe(const std::vector<const SubUnit*>& units) {
    ++stats_.allocation_runs;
    // pool_ was capacity-sorted once in the constructor and never changes.
    PackProbe probe = first_fit_probe(pool_, units, table_);
    if (probe.success && best_brokers_ > 0 && probe.brokers_used > best_brokers_) {
      probe.success = false;
    }
    return probe;
  }

  PackProbe probe_allocation() { return finish_probe(probe_base()); }

  // Units in [first, last) are excluded from an overlay probe. The excluded
  // units of every clustering are contiguous prefixes of GIF unit vectors,
  // so ranges (not per-unit sets) keep the skip test O(#gifs involved).
  struct UnitRange {
    const SubUnit* first = nullptr;
    const SubUnit* last = nullptr;
  };

  PackProbe probe_replacement(const std::vector<UnitRange>& removed, const SubUnit& added) {
    const std::vector<const SubUnit*>& base = probe_base();
    probe_scratch_.clear();
    probe_scratch_.reserve(base.size() + 1);
    const SubUnit* add = &added;
    for (const SubUnit* u : base) {
      bool skip = false;
      for (const UnitRange& r : removed) {
        if (u >= r.first && u < r.last) {
          skip = true;
          break;
        }
      }
      if (skip) continue;
      if (add != nullptr && unit_order_less(*add, *u)) {
        probe_scratch_.push_back(add);
        add = nullptr;
      }
      probe_scratch_.push_back(u);
    }
    if (add != nullptr) probe_scratch_.push_back(add);
    return finish_probe(probe_scratch_);
  }

  // Register a brand-new gif holding `unit` (profile may equal an existing
  // gif's, in which case the unit joins that gif). Returns the gif id the
  // unit ended up in.
  std::uint64_t commit_new_unit(SubUnit unit) {
    invalidate_probe_units();
    if (opts_.poset_pruning) {
      const std::uint64_t id = next_id_++;
      const auto ins = poset_.insert(unit.profile, id);
      if (!ins.inserted) {
        const std::uint64_t existing = poset_.payload(ins.node);
        Gif& g = gif(existing);
        g.units.push_back(std::move(unit));
        g.sort_units();
        dirty_.insert(existing);
        return existing;
      }
      Gif g;
      g.id = id;
      g.profile = unit.profile;
      (void)g.profile.cardinality();  // warm before sharing across threads
      g.units.push_back(std::move(unit));
      gifs_.emplace(id, std::move(g));
      node_of_[id] = ins.node;
      dirty_.insert(id);
      return id;
    }
    // No poset: look for an equal gif by scan (grouping may be off too, in
    // which case every unit is its own gif and we still merge equal bits to
    // keep the pool small).
    for (auto& [id, g] : gifs_) {
      if (opts_.gif_grouping && SubscriptionProfile::same_bits(g.profile, unit.profile)) {
        g.units.push_back(std::move(unit));
        g.sort_units();
        dirty_.insert(id);
        return id;
      }
    }
    const std::uint64_t id = next_id_++;
    Gif g;
    g.id = id;
    g.profile = unit.profile;
    (void)g.profile.cardinality();  // warm before sharing across threads
    g.units.push_back(std::move(unit));
    gifs_.emplace(id, std::move(g));
    dirty_.insert(id);
    return id;
  }

  void remove_gif(std::uint64_t id) {
    invalidate_probe_units();
    if (opts_.poset_pruning) {
      const auto it = node_of_.find(id);
      if (it != node_of_.end()) {
        poset_.remove(it->second);
        node_of_.erase(it);
      }
    }
    gifs_.erase(id);
    best_.erase(id);
    dirty_.erase(id);
    // Anyone whose cached partner was this gif must re-search.
    for (const auto& [other, cand] : best_) {
      if (cand.partner == id) dirty_.insert(other);
    }
  }

  // ---- candidate search ----

  void refresh_dirty() {
    if (dirty_.empty()) return;
    std::vector<std::uint64_t> ids;
    ids.reserve(dirty_.size());
    for (const std::uint64_t id : dirty_) {
      if (gifs_.contains(id)) ids.push_back(id);
    }
    dirty_.clear();
    std::sort(ids.begin(), ids.end());

    std::vector<SearchOutcome> outcomes(ids.size());
    if (threads_ > 1 && ids.size() > 1) {
      if (!workers_) workers_ = std::make_unique<ThreadPool>(threads_);
      workers_->parallel_for(ids.size(),
                             [&](std::size_t i) { outcomes[i] = find_best_partner(ids[i]); });
    } else {
      for (std::size_t i = 0; i < ids.size(); ++i) outcomes[i] = find_best_partner(ids[i]);
    }

    // Post-join merge in ascending-id order: first every search's own
    // result, then the symmetric improvements (which only ever raise a
    // cached closeness). Deterministic for any thread count.
    for (std::size_t i = 0; i < ids.size(); ++i) {
      stats_.closeness_computations += outcomes[i].closeness_computations;
      if (outcomes[i].best) {
        best_[ids[i]] = *outcomes[i].best;
      } else {
        best_.erase(ids[i]);
      }
    }
    for (std::size_t i = 0; i < ids.size(); ++i) {
      for (const auto& [other, c] : outcomes[i].improvements) {
        const auto it = best_.find(other);
        if (it != best_.end() && c > it->second.closeness) {
          it->second = Candidate{ids[i], c};
        }
      }
    }
  }

  std::optional<std::pair<std::uint64_t, Candidate>> pick_global_best() const {
    std::optional<std::pair<std::uint64_t, Candidate>> best;
    for (const auto& [id, cand] : best_) {
      if (!best || cand.closeness > best->second.closeness ||
          (cand.closeness == best->second.closeness && id < best->first)) {
        best = {id, cand};
      }
    }
    return best;
  }

  // Pure read of the run state (gifs_, poset_, blacklist_, best_ are all
  // snapshots during a refresh) — runs concurrently across dirty GIFs.
  SearchOutcome find_best_partner(std::uint64_t id) const {
    const auto git = gifs_.find(id);
    assert(git != gifs_.end());
    const Gif& g = git->second;
    SearchOutcome out;
    auto close = [&](const SubscriptionProfile& a, const SubscriptionProfile& b) {
      ++out.closeness_computations;
      return closeness(opts_.metric, a, b);
    };
    auto consider = [&](std::uint64_t other, double c) {
      if (c <= 0) return;
      if (blacklisted(id, other)) return;
      if (!out.best || c > out.best->closeness ||
          (c == out.best->closeness && other < out.best->partner)) {
        out.best = Candidate{other, c};
      }
      // Symmetric improvement propagation: a freshly computed closeness may
      // beat `other`'s cached candidate. Recorded here, applied post-join.
      if (other != id) {
        const auto it = best_.find(other);
        if (it != best_.end() && c > it->second.closeness) {
          out.improvements.emplace_back(other, c);
        }
      }
    };

    // Self pair: a GIF with two or more units can cluster with itself.
    if (g.units.size() >= 2) consider(id, close(g.profile, g.profile));

    if (!opts_.poset_pruning) {
      for (const auto& [other, og] : gifs_) {
        if (other == id) continue;
        consider(other, close(g.profile, og.profile));
      }
      return out;
    }

    // Poset-guided breadth-first search (optimization 2): prune subtrees
    // with empty relation (closeness 0 under INTERSECT/IOS/IOU) and stop
    // descending once the closeness value starts to decrease. XOR admits
    // neither prune, so it degenerates to a full walk.
    const bool prunes = metric_prunes_empty(opts_.metric);
    struct Item {
      ProfilePoset::NodeId node;
      double parent_c;
    };
    std::vector<Item> queue;
    std::unordered_set<ProfilePoset::NodeId> seen;
    for (const auto c : poset_.children(ProfilePoset::kRoot)) {
      queue.push_back({c, -1.0});
      seen.insert(c);
    }
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const Item item = queue[head];
      const std::uint64_t other = poset_.payload(item.node);
      const auto oit = gifs_.find(other);
      if (oit == gifs_.end()) continue;
      const double c = close(g.profile, oit->second.profile);
      if (other != id) consider(other, c);
      bool descend = true;
      if (prunes) {
        if (c == 0.0 && other != id) descend = false;          // empty relation
        if (descend && c < item.parent_c) descend = false;     // started decreasing
      }
      if (descend) {
        for (const auto ch : poset_.children(item.node)) {
          if (seen.insert(ch).second) queue.push_back({ch, c});
        }
      }
    }
    return out;
  }

  // ---- clustering actions ----

  // Try clustering within one GIF (equal relation, Section IV-C.1): find by
  // binary search the largest k such that merging the k lightest units
  // still allocates. Feasibility is probed through overlays; the GIF is
  // mutated only once, on commit.
  void try_self_cluster(std::uint64_t gid) {
    Gif& g = gif(gid);
    const std::size_t n = g.units.size();
    assert(n >= 2);
    auto merged_k = [&](std::size_t k) -> SubUnit {
      SubUnit merged = g.units[0];
      for (std::size_t i = 1; i < k; ++i) merged = cluster_units(merged, g.units[i], table_);
      return merged;
    };
    auto test_k = [&](std::size_t k) -> PackProbe {
      const SubUnit merged = merged_k(k);
      return probe_replacement({{g.units.data(), g.units.data() + k}}, merged);
    };
    PackProbe winning = test_k(2);  // doubles as the feasibility gate
    if (!winning.success) {
      ++stats_.clusterings_rejected;
      add_blacklist(gid, gid);
      return;
    }
    std::size_t lo = 2;
    std::size_t hi = n;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo + 1) / 2;
      const PackProbe probe = test_k(mid);
      if (probe.success) {
        lo = mid;
        winning = probe;
      } else {
        hi = mid - 1;
      }
    }
    // Commit k = lo.
    SubUnit merged = merged_k(lo);
    g.units.erase(g.units.begin(), g.units.begin() + static_cast<std::ptrdiff_t>(lo));
    g.units.push_back(std::move(merged));
    g.sort_units();
    invalidate_probe_units();
    best_brokers_ = winning.brokers_used;
    ++stats_.clusterings_applied;
    dirty_.insert(gid);
    if (g.units.size() < 2) add_blacklist(gid, gid);
  }

  // Dispatch a cross-GIF pair by its bit-vector relation.
  void try_pair(std::uint64_t a, std::uint64_t b, double pair_closeness) {
    const Relation rel = SubscriptionProfile::relation(gif(a).profile, gif(b).profile);
    switch (rel) {
      case Relation::kEmpty:
        // Only reachable under XOR (which clusters disjoint GIFs, the
        // pathology Section IV-C.2 describes) — treat as a plain pairwise
        // merge.
      case Relation::kEqual:
      case Relation::kIntersect: {
        if (opts_.one_to_many && rel == Relation::kIntersect) {
          if (try_one_to_many(a, b, pair_closeness) ||
              try_one_to_many(b, a, pair_closeness)) {
            return;
          }
        }
        try_pairwise_merge(a, b);
        return;
      }
      case Relation::kSuperset:
        try_cover_cluster(a, b);
        return;
      case Relation::kSubset:
        try_cover_cluster(b, a);
        return;
    }
  }

  // Merge the lightest unit of each GIF into a new cluster unit.
  void try_pairwise_merge(std::uint64_t a, std::uint64_t b) {
    Gif& ga = gif(a);
    Gif& gb = gif(b);
    SubUnit merged = cluster_units(ga.units.front(), gb.units.front(), table_);
    const PackProbe probe = probe_replacement(
        {{ga.units.data(), ga.units.data() + 1}, {gb.units.data(), gb.units.data() + 1}},
        merged);
    if (!probe.success) {
      ++stats_.clusterings_rejected;
      add_blacklist(a, b);
      return;
    }
    ga.units.erase(ga.units.begin());
    gb.units.erase(gb.units.begin());
    invalidate_probe_units();
    best_brokers_ = probe.brokers_used;
    ++stats_.clusterings_applied;
    if (ga.units.empty()) {
      remove_gif(a);
    } else {
      dirty_.insert(a);
    }
    if (gb.units.empty()) {
      remove_gif(b);
    } else {
      dirty_.insert(b);
    }
    commit_new_unit(std::move(merged));
  }

  // Covering relation: cluster the lightest unit of the covering GIF with
  // as many (binary search) lightest units of the covered GIF as possible.
  void try_cover_cluster(std::uint64_t cover_id, std::uint64_t covered_id) {
    Gif& cover = gif(cover_id);
    Gif& covered = gif(covered_id);
    const std::size_t n = covered.units.size();
    auto merged_m = [&](std::size_t m) -> SubUnit {
      SubUnit merged = cover.units.front();
      for (std::size_t i = 0; i < m; ++i) merged = cluster_units(merged, covered.units[i], table_);
      return merged;
    };
    auto test_m = [&](std::size_t m) -> PackProbe {
      const SubUnit merged = merged_m(m);  // profile unchanged: covered ⊆ cover
      return probe_replacement(
          {{cover.units.data(), cover.units.data() + 1},
           {covered.units.data(), covered.units.data() + m}},
          merged);
    };
    PackProbe winning = test_m(1);  // doubles as the feasibility gate
    if (!winning.success) {
      ++stats_.clusterings_rejected;
      add_blacklist(cover_id, covered_id);
      return;
    }
    std::size_t lo = 1;
    std::size_t hi = n;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo + 1) / 2;
      const PackProbe probe = test_m(mid);
      if (probe.success) {
        lo = mid;
        winning = probe;
      } else {
        hi = mid - 1;
      }
    }
    SubUnit merged = merged_m(lo);
    cover.units.erase(cover.units.begin());
    covered.units.erase(covered.units.begin(),
                        covered.units.begin() + static_cast<std::ptrdiff_t>(lo));
    cover.units.push_back(std::move(merged));
    cover.sort_units();
    invalidate_probe_units();
    best_brokers_ = winning.brokers_used;
    ++stats_.clusterings_applied;
    dirty_.insert(cover_id);
    if (covered.units.empty()) {
      remove_gif(covered_id);
    } else {
      dirty_.insert(covered_id);
    }
  }

  // Optimization 3 (Section IV-C.3): before clustering an intersect pair,
  // try clustering `parent` with a Covered GIF Set chosen by greedy set
  // cover. Valid only if the CGS closeness beats the pair's and the result
  // allocates. Returns true if applied.
  bool try_one_to_many(std::uint64_t parent_id, std::uint64_t other_id,
                       double pair_closeness) {
    Gif& parent = gif(parent_id);
    // Covered GIFs: poset descendants, or a scan when the poset is off.
    std::vector<std::uint64_t> covered;
    if (opts_.poset_pruning) {
      const auto nit = node_of_.find(parent_id);
      if (nit == node_of_.end()) return false;
      for (const auto d : poset_.descendants(nit->second)) {
        const std::uint64_t pid = poset_.payload(d);
        if (gifs_.contains(pid)) covered.push_back(pid);
      }
    } else {
      for (const auto& [id, g] : gifs_) {
        if (id == parent_id) continue;
        if (SubscriptionProfile::covers(parent.profile, g.profile) &&
            !SubscriptionProfile::same_bits(parent.profile, g.profile)) {
          covered.push_back(id);
        }
      }
    }
    if (covered.empty()) return false;

    // Load budget: the CGS-parent cluster must not exceed the load of the
    // original candidate pair.
    const Bandwidth budget =
        parent.units.front().out_bw + gif(other_id).units.front().out_bw;
    Bandwidth spent = parent.units.front().out_bw;

    // Greedy set cover over the covered GIFs: repeatedly take the GIF whose
    // bits add the most coverage not already in the CGS.
    SubscriptionProfile cgs_profile;
    std::vector<std::uint64_t> chosen;
    std::unordered_set<std::uint64_t> remaining(covered.begin(), covered.end());
    while (!remaining.empty()) {
      std::uint64_t best_id = 0;
      std::size_t best_gain = 0;
      for (const std::uint64_t cid : remaining) {
        const auto& cp = gif(cid).profile;
        const std::size_t gain =
            cp.cardinality() - SubscriptionProfile::intersect_count(cgs_profile, cp);
        if (gain > best_gain || (gain == best_gain && best_gain > 0 && cid < best_id)) {
          best_gain = gain;
          best_id = cid;
        }
      }
      if (best_gain == 0) break;
      const Bandwidth add_bw = gif(best_id).units.front().out_bw;
      if (spent + add_bw > budget) break;
      spent += add_bw;
      chosen.push_back(best_id);
      cgs_profile.merge(gif(best_id).profile);
      remaining.erase(best_id);
    }
    if (chosen.empty()) return false;
    if (closeness(opts_.metric, parent.profile, cgs_profile) <= pair_closeness) {
      ++stats_.closeness_computations;
      return false;
    }
    ++stats_.closeness_computations;

    // Cluster parent.lightest with the lightest unit of every chosen GIF,
    // probed through an overlay — no GIF is touched unless the probe
    // succeeds, so the failure path has nothing to restore. The merged
    // profile equals the parent's (all chosen are covered), so the unit
    // stays in the parent GIF.
    SubUnit merged = parent.units.front();
    std::vector<UnitRange> removed;
    removed.reserve(chosen.size() + 1);
    removed.push_back({parent.units.data(), parent.units.data() + 1});
    for (const std::uint64_t cid : chosen) {
      Gif& cg = gif(cid);
      merged = cluster_units(merged, cg.units.front(), table_);
      removed.push_back({cg.units.data(), cg.units.data() + 1});
    }

    const PackProbe probe = probe_replacement(removed, merged);
    if (!probe.success) {
      return false;  // fall back to the pairwise merge (no blacklist)
    }
    parent.units.erase(parent.units.begin());
    for (const std::uint64_t cid : chosen) {
      Gif& cg = gif(cid);
      cg.units.erase(cg.units.begin());
    }
    parent.units.push_back(std::move(merged));
    parent.sort_units();
    invalidate_probe_units();
    best_brokers_ = probe.brokers_used;
    ++stats_.clusterings_applied;
    ++stats_.one_to_many_applied;
    dirty_.insert(parent_id);
    for (const std::uint64_t cid : chosen) {
      if (gif(cid).units.empty()) {
        remove_gif(cid);
      } else {
        dirty_.insert(cid);
      }
    }
    return true;
  }

  std::vector<AllocBroker> pool_;
  const PublisherTable& table_;
  CramOptions opts_;
  CramStats stats_;
  std::unordered_map<std::uint64_t, Gif> gifs_;
  std::uint64_t next_id_ = 0;
  ProfilePoset poset_;
  std::unordered_map<std::uint64_t, ProfilePoset::NodeId> node_of_;
  std::unordered_set<GifPairKey, GifPairKeyHash> blacklist_;
  std::unordered_map<std::uint64_t, Candidate> best_;
  std::unordered_set<std::uint64_t> dirty_;
  std::size_t best_brokers_ = 0;
  // Allocation-probe cache (see "allocation probes" above).
  std::vector<const SubUnit*> probe_units_;
  std::vector<const SubUnit*> probe_scratch_;
  bool probe_units_valid_ = false;
  // Pair-search worker pool, created on first parallel refresh.
  std::size_t threads_ = 1;
  std::unique_ptr<ThreadPool> workers_;
};

}  // namespace

CramResult cram_allocate(std::vector<AllocBroker> pool, std::vector<SubUnit> units,
                         const PublisherTable& table, const CramOptions& options) {
  CramOptions opts = options;
  // Optimization 2 structures the search over the poset of GIFs, so it
  // requires optimization 1 (without grouping, equal profiles would collide
  // on one poset node and shadow each other).
  if (!opts.gif_grouping) opts.poset_pruning = false;
  if (const char* env = std::getenv("GREENPS_CRAM_THREADS");
      env != nullptr && *env != '\0') {
    opts.threads = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  }
  CramRun run(std::move(pool), std::move(units), table, opts);
  return run.run();
}

}  // namespace greenps
