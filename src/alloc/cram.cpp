#include "alloc/cram.hpp"

#include <cstdlib>
#include <utility>

#include "alloc/cram_run.hpp"

namespace greenps {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

GifPairKey make_gif_pair_key(std::uint64_t a, std::uint64_t b) {
  if (a > b) std::swap(a, b);
  return GifPairKey{a, b};
}

std::size_t GifPairKeyHash::operator()(const GifPairKey& k) const {
  return static_cast<std::size_t>(splitmix64(k.lo) ^ splitmix64(~k.hi));
}

CramOptions resolve_cram_options(const CramOptions& options) {
  CramOptions opts = options;
  // Optimization 2 structures the search over the poset of GIFs, so it
  // requires optimization 1 (without grouping, equal profiles would collide
  // on one poset node and shadow each other).
  if (!opts.gif_grouping) opts.poset_pruning = false;
  if (const char* env = std::getenv("GREENPS_CRAM_THREADS");
      env != nullptr && *env != '\0') {
    opts.threads = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  }
  if (const char* env = std::getenv("GREENPS_CRAM_REBASELINE");
      env != nullptr && *env != '\0') {
    opts.rebaseline_interval = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  }
  return opts;
}

CramResult cram_allocate(std::vector<AllocBroker> pool, std::vector<SubUnit> units,
                         const PublisherTable& table, const CramOptions& options) {
  cram_detail::CramRun run(std::move(pool), std::move(units), table,
                           resolve_cram_options(options));
  return run.run();
}

}  // namespace greenps
