// Incremental CRAM under subscription churn.
//
// cram_allocate() converges from scratch: every GIF enters the poset, every
// pair is searched, every clustering is probed. IncrementalCram keeps that
// converged state alive between reconfigurations and exposes apply():
// subscription add/remove deltas are spliced through the existing poset
// (insert/remove, no DAG rebuild), clusters that lost members are shrunk in
// place (the survivors re-enter as one unit, re-OR'd from their original
// profiles), and only the dirty neighborhoods are re-searched and
// re-clustered — the checkpointed first-fit base serves as the warm start
// for every feasibility probe. Costs scale with the delta, not the live
// subscription population.
//
// The result is NOT guaranteed bit-identical to a from-scratch run: pairs
// whose neighborhoods the delta never touched are not re-searched, so a
// clustering opportunity the new packing would admit can go unnoticed. The
// differential oracle (croc/diff_oracle) bounds how much worse: union-rate
// objective within a configurable epsilon of the from-scratch result.
#pragma once

#include <cstddef>
#include <memory>
#include <unordered_map>
#include <vector>

#include "alloc/cram.hpp"

namespace greenps {

class ProfilePoset;

namespace cram_detail {
class CramRun;
}

// Per-apply() delta accounting, also mirrored into cram.incremental.*
// metrics.
struct CramDeltaStats {
  std::size_t added_units = 0;
  std::size_t removed_requested = 0;    // SubIds in the remove batch
  std::size_t removed_found = 0;        // of those, located in a live unit
  std::size_t units_dissolved = 0;      // clusters that lost a member
  std::size_t survivors_reinserted = 0; // members carried into shrunk units
  std::size_t gifs_removed = 0;
  std::size_t blacklist_cleared = 0;    // dirty/dead pairs eligible again
  std::size_t dirty_gifs = 0;           // dirty-set size entering reconvergence
  std::size_t gif_count = 0;            // live GIFs after the delta
  // This apply() folded a from-scratch convergence into the session (drift
  // re-baselining) instead of an incremental reconvergence.
  bool rebaselined = false;
};

class IncrementalCram {
 public:
  // `units` must be singleton subscription units (one member each) —
  // clustering is CRAM's job, and dissolution needs the original unit of
  // every member, which this class records before handing them over.
  IncrementalCram(std::vector<AllocBroker> pool, std::vector<SubUnit> units,
                  PublisherTable table, const CramOptions& options = {});
  ~IncrementalCram();

  // The engine holds references into this object; pin it.
  IncrementalCram(const IncrementalCram&) = delete;
  IncrementalCram& operator=(const IncrementalCram&) = delete;

  // Run the initial from-scratch convergence (equivalent to cram_allocate
  // on the constructor arguments). Must be called once, before apply().
  CramResult initialize();

  // Apply one batch of deltas and reconverge the dirty neighborhoods.
  // `added` must be singleton subscription units; `removed` lists SubIds to
  // drop (unknown ids are counted in removed_requested but otherwise
  // ignored). The returned stats cover only this reconvergence, so
  // comparison counts line up against a from-scratch run on the same
  // post-delta population.
  CramResult apply(std::vector<SubUnit> added, const std::vector<SubId>& removed);

  // Force the next apply() to re-baseline (from-scratch convergence over
  // the live population folded into the session), regardless of
  // CramOptions::rebaseline_interval. Callers watching the differential
  // oracle use this when the union-rate gap approaches the epsilon bound.
  void request_rebaseline() { rebaseline_requested_ = true; }
  // Re-baselines performed so far, and deltas applied since the last one.
  [[nodiscard]] std::size_t rebaselines() const { return rebaselines_; }
  [[nodiscard]] std::size_t deltas_since_baseline() const { return deltas_since_baseline_; }

  [[nodiscard]] const CramDeltaStats& last_delta() const { return last_delta_; }
  [[nodiscard]] std::size_t live_subscriptions() const { return originals_.size(); }

  // The live population as original singleton units, sorted by SubId —
  // exactly what a from-scratch cram_allocate on today's subscriptions
  // would receive. The differential oracle runs on this.
  [[nodiscard]] std::vector<SubUnit> current_original_units() const;

  // The (unsorted, as-constructed) broker pool and table, for oracle runs.
  [[nodiscard]] const std::vector<AllocBroker>& pool() const { return pool_; }
  [[nodiscard]] const PublisherTable& table() const { return table_; }
  [[nodiscard]] const CramOptions& options() const { return opts_; }

  // The engine's live containment poset (for reachability differentials).
  [[nodiscard]] const ProfilePoset& poset() const;

 private:
  CramResult rebaseline(std::size_t added_units, const std::vector<SubId>& removed);

  PublisherTable table_;
  std::vector<AllocBroker> pool_;
  CramOptions opts_;
  // SubId -> the original singleton unit, for dissolving clusters that lose
  // a member: survivors re-enter the pool as these units.
  std::unordered_map<SubId, SubUnit> originals_;
  std::unique_ptr<cram_detail::CramRun> run_;
  CramDeltaStats last_delta_;
  bool initialized_ = false;
  bool rebaseline_requested_ = false;
  std::size_t rebaselines_ = 0;
  std::size_t deltas_since_baseline_ = 0;
};

}  // namespace greenps
