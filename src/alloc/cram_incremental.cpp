#include "alloc/cram_incremental.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>
#include <utility>

#include "alloc/cram_run.hpp"
#include "obs/metrics.hpp"

namespace greenps {

IncrementalCram::IncrementalCram(std::vector<AllocBroker> pool,
                                 std::vector<SubUnit> units, PublisherTable table,
                                 const CramOptions& options)
    : table_(std::move(table)), pool_(std::move(pool)),
      opts_(resolve_cram_options(options)) {
  originals_.reserve(units.size());
  for (const SubUnit& u : units) {
    assert(u.members.size() == 1 && "incremental CRAM needs singleton units");
    originals_.emplace(u.members.front(), u);
  }
  run_ = std::make_unique<cram_detail::CramRun>(pool_, std::move(units), table_, opts_);
}

IncrementalCram::~IncrementalCram() = default;

CramResult IncrementalCram::initialize() {
  assert(!initialized_);
  initialized_ = true;
  return run_->run();
}

CramResult IncrementalCram::apply(std::vector<SubUnit> added,
                                  const std::vector<SubId>& removed) {
  assert(initialized_ && "initialize() must run before apply()");
  last_delta_ = CramDeltaStats{};
  last_delta_.removed_requested = removed.size();
  // An id added and removed in the same batch nets out before the engine
  // sees it: apply_delta resolves removals against *existing* units, so a
  // same-batch arrival would otherwise be committed after its own removal
  // and linger as a ghost no longer in the live set.
  const std::unordered_set<SubId> removed_set(removed.begin(), removed.end());
  std::erase_if(added, [&removed_set](const SubUnit& u) {
    return removed_set.contains(u.members.front());
  });
  for (const SubUnit& u : added) {
    assert(u.members.size() == 1 && "incremental CRAM needs singleton units");
    originals_.emplace(u.members.front(), u);
  }

  ++deltas_since_baseline_;
  if (rebaseline_requested_ ||
      (opts_.rebaseline_interval > 0 &&
       deltas_since_baseline_ >= opts_.rebaseline_interval)) {
    return rebaseline(added.size(), removed);
  }

  const auto out = run_->apply_delta(std::move(added), removed, originals_);
  for (const SubId id : removed) originals_.erase(id);

  last_delta_.added_units = out.added_units;
  last_delta_.removed_found = out.removed_found;
  last_delta_.units_dissolved = out.units_dissolved;
  last_delta_.survivors_reinserted = out.survivors_reinserted;
  last_delta_.gifs_removed = out.gifs_removed;
  last_delta_.blacklist_cleared = out.blacklist_cleared;
  last_delta_.dirty_gifs = run_->dirty_count();
  last_delta_.gif_count = run_->gif_count();

  auto& reg = obs::MetricsRegistry::global();
  reg.counter("cram.incremental.deltas").add(1);
  reg.counter("cram.incremental.added_units").add(last_delta_.added_units);
  reg.counter("cram.incremental.removed_found").add(last_delta_.removed_found);
  reg.counter("cram.incremental.units_dissolved").add(last_delta_.units_dissolved);
  reg.counter("cram.incremental.survivors_reinserted")
      .add(last_delta_.survivors_reinserted);
  reg.counter("cram.incremental.gifs_removed").add(last_delta_.gifs_removed);
  reg.counter("cram.incremental.blacklist_cleared").add(last_delta_.blacklist_cleared);
  reg.gauge("cram.incremental.dirty_gifs").set(static_cast<double>(last_delta_.dirty_gifs));
  reg.gauge("cram.incremental.gif_count").set(static_cast<double>(last_delta_.gif_count));

  return run_->reconverge();
}

CramResult IncrementalCram::rebaseline(std::size_t added_units,
                                       const std::vector<SubId>& removed) {
  // Fold a from-scratch convergence over the live population into the
  // session: the delta's adds are already in originals_, the removes leave
  // now, and the engine restarts on exactly what cram_allocate would see.
  // Accumulated clustering drift (neighborhoods incremental reconvergence
  // never revisited) resets to zero.
  last_delta_.added_units = added_units;
  for (const SubId id : removed) {
    last_delta_.removed_found += originals_.erase(id);
  }
  run_ = std::make_unique<cram_detail::CramRun>(pool_, current_original_units(),
                                                table_, opts_);
  CramResult result = run_->run();
  last_delta_.gif_count = run_->gif_count();
  last_delta_.rebaselined = true;
  ++rebaselines_;
  deltas_since_baseline_ = 0;
  rebaseline_requested_ = false;

  auto& reg = obs::MetricsRegistry::global();
  reg.counter("cram.incremental.deltas").add(1);
  reg.counter("cram.incremental.rebaselines").add(1);
  reg.counter("cram.incremental.added_units").add(last_delta_.added_units);
  reg.counter("cram.incremental.removed_found").add(last_delta_.removed_found);
  reg.gauge("cram.incremental.gif_count").set(static_cast<double>(last_delta_.gif_count));
  return result;
}

std::vector<SubUnit> IncrementalCram::current_original_units() const {
  std::vector<SubUnit> units;
  units.reserve(originals_.size());
  for (const auto& [id, u] : originals_) {
    (void)id;
    units.push_back(u);
  }
  std::sort(units.begin(), units.end(), [](const SubUnit& a, const SubUnit& b) {
    return a.members.front() < b.members.front();
  });
  return units;
}

const ProfilePoset& IncrementalCram::poset() const { return run_->poset(); }

}  // namespace greenps
