#include "alloc/gif.hpp"

#include <algorithm>
#include <unordered_map>

namespace greenps {

Bandwidth Gif::total_out_bw() const {
  Bandwidth total = 0;
  for (const auto& u : units) total += u.out_bw;
  return total;
}

void Gif::sort_units() {
  std::sort(units.begin(), units.end(), [](const SubUnit& a, const SubUnit& b) {
    if (a.out_bw != b.out_bw) return a.out_bw < b.out_bw;
    const auto ka = a.members.empty() ? 0 : a.members.front().value();
    const auto kb = b.members.empty() ? 0 : b.members.front().value();
    return ka < kb;
  });
}

std::vector<Gif> group_identical_filters(std::vector<SubUnit> units) {
  std::vector<Gif> gifs;
  std::unordered_map<std::size_t, std::vector<std::size_t>> by_hash;  // hash -> gif indices
  for (auto& u : units) {
    const std::size_t h = u.profile.bit_hash();
    auto& bucket = by_hash[h];
    bool placed = false;
    for (const std::size_t gi : bucket) {
      if (SubscriptionProfile::same_bits(gifs[gi].profile, u.profile)) {
        gifs[gi].units.push_back(std::move(u));
        placed = true;
        break;
      }
    }
    if (!placed) {
      Gif g;
      g.id = gifs.size();
      g.profile = u.profile;
      g.units.push_back(std::move(u));
      bucket.push_back(gifs.size());
      gifs.push_back(std::move(g));
    }
  }
  for (auto& g : gifs) g.sort_units();
  return gifs;
}

std::vector<Gif> singleton_gifs(std::vector<SubUnit> units) {
  std::vector<Gif> gifs;
  gifs.reserve(units.size());
  for (auto& u : units) {
    Gif g;
    g.id = gifs.size();
    g.profile = u.profile;
    g.units.push_back(std::move(u));
    gifs.push_back(std::move(g));
  }
  return gifs;
}

}  // namespace greenps
