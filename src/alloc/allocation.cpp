#include "alloc/allocation.hpp"

#include <algorithm>

#include "alloc/bin_packing.hpp"

namespace greenps {

std::size_t Allocation::unit_count() const {
  std::size_t n = 0;
  for (const auto& b : brokers) n += b.units().size();
  return n;
}

std::size_t Allocation::endpoint_count() const {
  std::size_t n = 0;
  for (const auto& b : brokers) {
    for (const auto& u : b.units()) n += u.endpoint_count();
  }
  return n;
}

MsgRate Allocation::total_in_rate() const {
  MsgRate r = 0;
  for (const auto& b : brokers) r += b.in_rate();
  return r;
}

PackProbe first_fit_probe(const std::vector<AllocBroker>& pool,
                          const std::vector<const SubUnit*>& units,
                          const PublisherTable& table) {
  PackProbe probe;
  std::vector<BrokerLoad> loads;
  loads.reserve(pool.size());
  for (const AllocBroker& b : pool) loads.emplace_back(b, /*keep_units=*/false);
  for (const SubUnit* u : units) {
    probe.units_packed += 1;
    bool placed = false;
    for (BrokerLoad& load : loads) {
      if (load.try_add(*u, table)) {
        placed = true;
        break;
      }
    }
    if (!placed) return probe;
  }
  for (const BrokerLoad& load : loads) {
    if (!load.empty()) probe.brokers_used += 1;
  }
  probe.success = true;
  return probe;
}

Allocation first_fit(const std::vector<AllocBroker>& pool, const std::vector<SubUnit>& units,
                     const PublisherTable& table) {
  Allocation result;
  std::vector<BrokerLoad> loads;
  loads.reserve(pool.size());
  for (const AllocBroker& b : pool) loads.emplace_back(b);

  for (const SubUnit& u : units) {
    bool placed = false;
    for (BrokerLoad& load : loads) {
      if (load.try_add(u, table)) {
        placed = true;
        break;
      }
    }
    if (!placed) return result;  // success stays false
  }
  for (BrokerLoad& load : loads) {
    if (!load.empty()) result.brokers.push_back(std::move(load));
  }
  result.success = true;
  return result;
}

// --- CheckpointedFirstFit ---

namespace {

bool unit_ptr_less(const SubUnit* a, const SubUnit* b) { return unit_order_less(*a, *b); }

bool in_ranges(const SubUnit* u, const std::vector<UnitRange>& ranges) {
  for (const UnitRange& r : ranges) {
    if (u >= r.first && u < r.last) return true;
  }
  return false;
}

}  // namespace

CheckpointedFirstFit::CheckpointedFirstFit(std::vector<AllocBroker> pool, std::size_t stride)
    : pool_(std::move(pool)), stride_req_(stride) {
  sort_by_capacity_desc(pool_);
}

void CheckpointedFirstFit::reset_loads(std::vector<BrokerLoad>& loads) const {
  loads.clear();
  loads.reserve(pool_.size());
  for (const AllocBroker& b : pool_) loads.emplace_back(b, /*keep_units=*/false);
}

std::size_t CheckpointedFirstFit::load_checkpoint(std::size_t resume_pos,
                                                  std::vector<BrokerLoad>& loads) const {
  if (stride_ != kNoCheckpoints && valid_ckpts_ > 0) {
    const std::size_t covered = std::min(resume_pos, valid_ckpts_ * stride_);
    const std::size_t idx = covered / stride_;  // whole checkpoints usable
    if (idx > 0) {
      loads = ckpts_[idx - 1];
      return idx * stride_;
    }
  }
  reset_loads(loads);
  return 0;
}

const PackProbe& CheckpointedFirstFit::rebuild(std::vector<const SubUnit*> units,
                                               const PublisherTable& table,
                                               std::size_t resume_pos) {
  std::sort(units.begin(), units.end(), unit_ptr_less);
  if (stride_ == kNoCheckpoints && stride_req_ != kNoCheckpoints) {
    // Resolve the auto stride once, against the first base size, and keep it
    // fixed so checkpoint positions never shift between rebuilds.
    stride_ = stride_req_ != 0 ? stride_req_ : std::max<std::size_t>(16, units.size() / 64);
  }

  const std::size_t start = load_checkpoint(std::min(resume_pos, units.size()), work_);
  valid_ckpts_ = stride_ != kNoCheckpoints ? start / stride_ : 0;
  units_ = std::move(units);

  base_ = PackProbe{};
  base_.units_skipped = start;
  for (std::size_t i = start; i < units_.size(); ++i) {
    base_.units_packed += 1;
    bool placed = false;
    for (BrokerLoad& load : work_) {
      if (load.try_add(*units_[i], table)) {
        placed = true;
        break;
      }
    }
    if (!placed) return base_;  // success stays false; prefix checkpoints stay valid
    if (stride_ != kNoCheckpoints && (i + 1) % stride_ == 0) {
      const std::size_t idx = (i + 1) / stride_ - 1;
      if (idx < ckpts_.size()) {
        ckpts_[idx] = work_;
      } else {
        ckpts_.push_back(work_);
      }
      valid_ckpts_ = idx + 1;
    }
  }
  for (const BrokerLoad& load : work_) {
    if (!load.empty()) base_.brokers_used += 1;
  }
  base_.success = true;
  return base_;
}

void CheckpointedFirstFit::adopt(std::vector<const SubUnit*> units, std::size_t resume_pos,
                                 const PackProbe& result) {
  std::sort(units.begin(), units.end(), unit_ptr_less);
  if (stride_ == kNoCheckpoints && stride_req_ != kNoCheckpoints) {
    stride_ = stride_req_ != 0 ? stride_req_ : std::max<std::size_t>(16, units.size() / 64);
  }
  if (stride_ != kNoCheckpoints) {
    // Checkpoints fully inside the unchanged prefix still describe this
    // sequence; the rest are stale and dropped (never lazily refreshed).
    valid_ckpts_ = std::min(valid_ckpts_, std::min(resume_pos, units.size()) / stride_);
  }
  units_ = std::move(units);
  base_ = result;
  // The packing work was already accounted when the adopted probe ran.
  base_.units_packed = 0;
  base_.units_skipped = 0;
}

std::size_t CheckpointedFirstFit::divergence_position(const std::vector<UnitRange>& removed,
                                                      const SubUnit* added) const {
  // With the total unit order (unique member-id tiebreak), lower_bound over
  // the sorted base yields the exact index of a base unit, and for `added`
  // the position it would be spliced into.
  std::size_t pos = units_.size();
  if (added != nullptr) {
    const auto it = std::lower_bound(units_.begin(), units_.end(), added, unit_ptr_less);
    pos = static_cast<std::size_t>(it - units_.begin());
  }
  for (const UnitRange& r : removed) {
    if (r.first == r.last) continue;
    const SubUnit* earliest = &*std::min_element(r.first, r.last, unit_order_less);
    const auto it = std::lower_bound(units_.begin(), units_.end(), earliest, unit_ptr_less);
    pos = std::min(pos, static_cast<std::size_t>(it - units_.begin()));
  }
  return pos;
}

PackProbe CheckpointedFirstFit::probe_replacement(const std::vector<UnitRange>& removed,
                                                  const SubUnit* added,
                                                  const PublisherTable& table,
                                                  Scratch& scratch) const {
  PackProbe probe;
  const std::size_t diverge = divergence_position(removed, added);
  const std::size_t start = load_checkpoint(diverge, scratch.loads);
  // Base prefix [0, start) is identical in the overlay (every removed unit
  // and the insertion point lie at positions >= diverge >= start), so the
  // checkpointed state stands in for packing it.
  probe.units_skipped = start;

  bool pending_add = added != nullptr;
  std::size_t i = start;
  while (i < units_.size() || pending_add) {
    const SubUnit* next = nullptr;
    if (pending_add && (i == units_.size() || unit_order_less(*added, *units_[i]))) {
      next = added;
      pending_add = false;
    } else {
      next = units_[i++];
      if (in_ranges(next, removed)) continue;
    }
    probe.units_packed += 1;
    bool placed = false;
    for (BrokerLoad& load : scratch.loads) {
      if (load.try_add(*next, table)) {
        placed = true;
        break;
      }
    }
    if (!placed) return probe;
  }
  for (const BrokerLoad& load : scratch.loads) {
    if (!load.empty()) probe.brokers_used += 1;
  }
  probe.success = true;
  return probe;
}

}  // namespace greenps
