#include "alloc/allocation.hpp"

namespace greenps {

std::size_t Allocation::unit_count() const {
  std::size_t n = 0;
  for (const auto& b : brokers) n += b.units().size();
  return n;
}

std::size_t Allocation::endpoint_count() const {
  std::size_t n = 0;
  for (const auto& b : brokers) {
    for (const auto& u : b.units()) n += u.endpoint_count();
  }
  return n;
}

MsgRate Allocation::total_in_rate() const {
  MsgRate r = 0;
  for (const auto& b : brokers) r += b.in_rate();
  return r;
}

PackProbe first_fit_probe(const std::vector<AllocBroker>& pool,
                          const std::vector<const SubUnit*>& units,
                          const PublisherTable& table) {
  PackProbe probe;
  std::vector<BrokerLoad> loads;
  loads.reserve(pool.size());
  for (const AllocBroker& b : pool) loads.emplace_back(b, /*keep_units=*/false);
  for (const SubUnit* u : units) {
    bool placed = false;
    for (BrokerLoad& load : loads) {
      if (load.fits(*u, table)) {
        load.add(*u, table);
        placed = true;
        break;
      }
    }
    if (!placed) return probe;
  }
  for (const BrokerLoad& load : loads) {
    if (!load.empty()) probe.brokers_used += 1;
  }
  probe.success = true;
  return probe;
}

Allocation first_fit(const std::vector<AllocBroker>& pool, const std::vector<SubUnit>& units,
                     const PublisherTable& table) {
  Allocation result;
  std::vector<BrokerLoad> loads;
  loads.reserve(pool.size());
  for (const AllocBroker& b : pool) loads.emplace_back(b);

  for (const SubUnit& u : units) {
    bool placed = false;
    for (BrokerLoad& load : loads) {
      if (load.fits(u, table)) {
        load.add(u, table);
        placed = true;
        break;
      }
    }
    if (!placed) return result;  // success stays false
  }
  for (BrokerLoad& load : loads) {
    if (!load.empty()) result.brokers.push_back(std::move(load));
  }
  result.success = true;
  return result;
}

}  // namespace greenps
