// Allocation result type and the shared first-fit core used by FBF,
// BIN PACKING and (as its inner allocation test) CRAM, plus the
// checkpointed incremental packer behind CRAM's allocation probes.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "alloc/broker_pool.hpp"

namespace greenps {

struct Allocation {
  bool success = false;
  // One entry per broker that received at least one unit.
  std::vector<BrokerLoad> brokers;

  [[nodiscard]] std::size_t brokers_used() const { return brokers.size(); }
  [[nodiscard]] std::size_t unit_count() const;
  [[nodiscard]] std::size_t endpoint_count() const;
  // Sum over brokers of their union-profile input rate — proportional to
  // the total publication traffic entering the broker tier.
  [[nodiscard]] MsgRate total_in_rate() const;
};

// Place `units` (in the given order) onto `pool` (tried in the given order,
// which callers pre-sort by descending capacity): each unit goes to the
// first broker that passes the allocation test. Fails if any unit fits
// nowhere — "the algorithm ends ... if at least one subscription cannot be
// allocated to any broker".
[[nodiscard]] Allocation first_fit(const std::vector<AllocBroker>& pool,
                                   const std::vector<SubUnit>& units,
                                   const PublisherTable& table);

// Copy-free feasibility probe of the same packing (CRAM runs it after every
// clustering attempt, so it must not copy the pool of units).
struct PackProbe {
  bool success = false;
  std::size_t brokers_used = 0;
  // Units this probe actually walked through the allocation test, and units
  // whose packing was skipped by resuming from a checkpoint. For any one
  // overlay, packed + skipped equals the overlay length regardless of the
  // checkpoint interval.
  std::size_t units_packed = 0;
  std::size_t units_skipped = 0;
};

[[nodiscard]] PackProbe first_fit_probe(const std::vector<AllocBroker>& pool,
                                        const std::vector<const SubUnit*>& units,
                                        const PublisherTable& table);

// Units in [first, last) are excluded from an overlay probe. The ranges are
// contiguous in memory (prefixes of GIF unit vectors), not in pack order.
struct UnitRange {
  const SubUnit* first = nullptr;
  const SubUnit* last = nullptr;
};

// Incremental, resumable first-fit packing.
//
// Holds one base packing of a sorted unit sequence and snapshots the broker
// states every `stride` units. An overlay probe (base minus some unit
// ranges, plus at most one spliced-in unit) then resumes from the nearest
// checkpoint before the first position where the overlay diverges from the
// base, instead of repacking from scratch — first-fit state after k units
// depends only on those k units in order, so the resumed result is
// bit-identical to a from-scratch packing of the overlay. Rebuilding after
// a committed overlay resumes the same way via `resume_pos`.
//
// probe_replacement is const and touches only caller-owned scratch, so
// probes may run concurrently (CRAM's speculative parallel k-search).
class CheckpointedFirstFit {
 public:
  // No checkpoints: every probe and rebuild packs from position 0.
  static constexpr std::size_t kNoCheckpoints = std::numeric_limits<std::size_t>::max();

  // `stride` = checkpoint interval in units; 0 resolves to ~n/64 (min 16) at
  // the first rebuild and stays fixed so checkpoint positions never shift.
  explicit CheckpointedFirstFit(std::vector<AllocBroker> pool, std::size_t stride = 0);

  // Per-probe working state (broker loads), reusable across probes and
  // owned per worker thread during parallel searches.
  struct Scratch {
    std::vector<BrokerLoad> loads;
  };

  // Pack `units` as the new base, snapshotting broker states. The caller
  // guarantees units[0, resume_pos) is identical (by pointee value and
  // order) to the previous base prefix, so checkpoints before resume_pos
  // are reused and only the tail is repacked. Pass 0 for a full rebuild.
  // `units` is borrowed by pointer values; pointees must stay alive and
  // unchanged until the next rebuild.
  const PackProbe& rebuild(std::vector<const SubUnit*> units, const PublisherTable& table,
                           std::size_t resume_pos = 0);

  // Install `units` as the new base WITHOUT packing: `result` must be the
  // probe result of exactly this sequence (a committed overlay's winning
  // probe). Checkpoints at positions <= resume_pos stay valid by content;
  // later ones are dropped, not refreshed — a zero-cost commit trades
  // checkpoint coverage for skipping the entire re-pack.
  void adopt(std::vector<const SubUnit*> units, std::size_t resume_pos,
             const PackProbe& result);

  [[nodiscard]] const PackProbe& base() const { return base_; }
  [[nodiscard]] const std::vector<const SubUnit*>& units() const { return units_; }
  [[nodiscard]] std::size_t stride() const { return stride_; }
  [[nodiscard]] std::size_t checkpoint_count() const { return valid_ckpts_; }

  // Feasibility of the base sequence minus `removed` plus `added` (nullable),
  // resumed from the nearest checkpoint before the first divergence. Every
  // removed range must reference units of the current base.
  [[nodiscard]] PackProbe probe_replacement(const std::vector<UnitRange>& removed,
                                            const SubUnit* added,
                                            const PublisherTable& table,
                                            Scratch& scratch) const;

  // First pack-order position where the overlay diverges from the base —
  // the checkpoint-resume point, exposed so a commit can hand it to the
  // next rebuild as `resume_pos`.
  [[nodiscard]] std::size_t divergence_position(const std::vector<UnitRange>& removed,
                                                const SubUnit* added) const;

 private:
  void reset_loads(std::vector<BrokerLoad>& loads) const;
  // Copy the checkpointed state covering positions [0, resume_pos) into
  // `loads`; returns the number of base units that state accounts for.
  std::size_t load_checkpoint(std::size_t resume_pos, std::vector<BrokerLoad>& loads) const;

  std::vector<AllocBroker> pool_;  // capacity-sorted
  std::size_t stride_req_;
  std::size_t stride_ = kNoCheckpoints;
  std::vector<const SubUnit*> units_;
  // ckpts_[i] = broker states after packing (i+1)*stride_ base units.
  std::vector<std::vector<BrokerLoad>> ckpts_;
  std::size_t valid_ckpts_ = 0;
  std::vector<BrokerLoad> work_;  // rebuild working state
  PackProbe base_;
};

}  // namespace greenps
