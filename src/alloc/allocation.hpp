// Allocation result type and the shared first-fit core used by FBF,
// BIN PACKING and (as its inner allocation test) CRAM.
#pragma once

#include <vector>

#include "alloc/broker_pool.hpp"

namespace greenps {

struct Allocation {
  bool success = false;
  // One entry per broker that received at least one unit.
  std::vector<BrokerLoad> brokers;

  [[nodiscard]] std::size_t brokers_used() const { return brokers.size(); }
  [[nodiscard]] std::size_t unit_count() const;
  [[nodiscard]] std::size_t endpoint_count() const;
  // Sum over brokers of their union-profile input rate — proportional to
  // the total publication traffic entering the broker tier.
  [[nodiscard]] MsgRate total_in_rate() const;
};

// Place `units` (in the given order) onto `pool` (tried in the given order,
// which callers pre-sort by descending capacity): each unit goes to the
// first broker that passes the allocation test. Fails if any unit fits
// nowhere — "the algorithm ends ... if at least one subscription cannot be
// allocated to any broker".
[[nodiscard]] Allocation first_fit(const std::vector<AllocBroker>& pool,
                                   const std::vector<SubUnit>& units,
                                   const PublisherTable& table);

// Copy-free feasibility probe of the same packing (CRAM runs it after every
// clustering attempt, so it must not copy the pool of units).
struct PackProbe {
  bool success = false;
  std::size_t brokers_used = 0;
};

[[nodiscard]] PackProbe first_fit_probe(const std::vector<AllocBroker>& pool,
                                        const std::vector<const SubUnit*>& units,
                                        const PublisherTable& table);

}  // namespace greenps
