// Optimization 1 (Section IV-C.1): Groups of Identical Filters.
//
// Subscriptions whose bit vectors are identical are grouped, shrinking the
// candidate space of CRAM's pair search (the paper reports up to 61% with
// 8,000 subscriptions).
#pragma once

#include <cstdint>
#include <vector>

#include "profile/sub_unit.hpp"

namespace greenps {

struct Gif {
  std::uint64_t id = 0;
  // The bit pattern shared by every unit in the group.
  SubscriptionProfile profile;
  // Units with that exact pattern, kept sorted by ascending output
  // bandwidth (the clustering rules pick lightest units first).
  std::vector<SubUnit> units;

  [[nodiscard]] Bandwidth total_out_bw() const;
  [[nodiscard]] const SubUnit& lightest() const { return units.front(); }
  void sort_units();
};

// Group units by identical bit patterns; GIF ids are assigned 0..n-1.
[[nodiscard]] std::vector<Gif> group_identical_filters(std::vector<SubUnit> units);

// Degenerate grouping (optimization 1 disabled): one GIF per unit.
[[nodiscard]] std::vector<Gif> singleton_gifs(std::vector<SubUnit> units);

}  // namespace greenps
