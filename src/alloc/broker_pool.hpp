// Broker capacity views and running load state used by the Phase-2
// allocators.
#pragma once

#include <vector>

#include "common/ids.hpp"
#include "matching/delay_model.hpp"
#include "profile/sub_unit.hpp"
#include "profile/union_profile.hpp"

namespace greenps {

// What CROC knows about a broker from its BIA (Section III-A): identity,
// total output bandwidth, and the matching delay function.
struct AllocBroker {
  BrokerId id;
  Bandwidth out_bw = 0;
  MatchingDelayFunction delay;
};

// Sort descending by output bandwidth ("descending resource capacity"),
// ties broken by id for determinism.
void sort_by_capacity_desc(std::vector<AllocBroker>& brokers);

// Load assigned to one broker during an allocation run. Tracks the union
// profile of hosted units so the incoming publication rate counts shared
// traffic once. The union is kept flat (UnionProfile) so the allocation
// test is a single two-pointer walk, and the whole state is cheap to
// snapshot for checkpointed probe resume.
//
// The publisher table passed to fits/add/try_add must be the same table for
// the lifetime of one load (publisher pointers are resolved once on merge).
class BrokerLoad {
 public:
  // `keep_units=false` turns the load into a dry-run accumulator: capacity
  // accounting runs as usual but accepted units are not retained (used by
  // CRAM's allocation test, which only needs feasibility + broker count).
  explicit BrokerLoad(AllocBroker broker, bool keep_units = true)
      : broker_(broker), keep_units_(keep_units) {}

  // Allocation test (Section IV-A): after accepting `u`, remaining output
  // bandwidth must stay > 0 and the incoming publication rate must not
  // exceed the maximum matching rate at the new filter count.
  [[nodiscard]] bool fits(const SubUnit& u, const PublisherTable& table) const;

  // Fused allocation test + accept: one union-rate walk decides and, on
  // success, accounts (fits() + add() cost two). Returns false with the
  // state untouched if `u` does not fit.
  bool try_add(const SubUnit& u, const PublisherTable& table);

  // Accept `u` unconditionally (caller checked fits()) — one fused
  // merge_with_rate walk.
  void add(const SubUnit& u, const PublisherTable& table);

  [[nodiscard]] const AllocBroker& broker() const { return broker_; }
  [[nodiscard]] const std::vector<SubUnit>& units() const { return units_; }
  [[nodiscard]] std::vector<SubUnit>& mutable_units() { return units_; }
  [[nodiscard]] Bandwidth used_bw() const { return used_bw_; }
  [[nodiscard]] Bandwidth remaining_bw() const { return broker_.out_bw - used_bw_; }
  [[nodiscard]] MsgRate in_rate() const { return in_rate_; }
  [[nodiscard]] std::size_t filter_count() const { return filter_count_; }
  // Materialized union of hosted profiles (Phase-3 child-broker units).
  [[nodiscard]] SubscriptionProfile union_profile() const {
    return union_.to_subscription_profile();
  }
  [[nodiscard]] const UnionProfile& union_view() const { return union_; }
  [[nodiscard]] bool empty() const { return unit_count_ == 0; }

  // Fraction of output bandwidth in use.
  [[nodiscard]] double utilization() const {
    return broker_.out_bw > 0 ? used_bw_ / broker_.out_bw : 0.0;
  }

 private:
  // The allocation test's incoming-rate value for accepting `u`; quiet NaN
  // is never produced (rates are finite), so a sentinel is unnecessary —
  // the caller re-checks the bound.
  [[nodiscard]] bool admissible(const SubUnit& u, MsgRate* rate_out) const;

  AllocBroker broker_;
  std::vector<SubUnit> units_;
  UnionProfile union_;
  Bandwidth used_bw_ = 0;
  MsgRate in_rate_ = 0;
  std::size_t filter_count_ = 0;
  std::size_t unit_count_ = 0;
  bool keep_units_ = true;
};

}  // namespace greenps
