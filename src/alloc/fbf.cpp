#include "alloc/fbf.hpp"

#include "obs/trace.hpp"

namespace greenps {

Allocation fbf_allocate(std::vector<AllocBroker> pool, std::vector<SubUnit> units,
                        const PublisherTable& table, Rng& rng) {
  GREENPS_SPAN_TAGGED("alloc.fbf", units.size());
  sort_by_capacity_desc(pool);
  rng.shuffle(units);  // "a subscription is randomly removed from the pool"
  return first_fit(pool, units, table);
}

}  // namespace greenps
