// BIN PACKING (Section IV-B): like FBF but subscriptions are first sorted
// by descending bandwidth requirement (first-fit-decreasing). O(S log S);
// consistently allocates about one broker fewer than FBF.
#pragma once

#include "alloc/allocation.hpp"

namespace greenps {

[[nodiscard]] Allocation bin_packing_allocate(std::vector<AllocBroker> pool,
                                              std::vector<SubUnit> units,
                                              const PublisherTable& table);

// Sort units by descending output-bandwidth requirement (stable tiebreak on
// first member id for determinism). Exposed for CRAM, which re-runs
// BIN PACKING as its allocation test.
void sort_units_by_bandwidth_desc(std::vector<SubUnit>& units);
void sort_units_by_bandwidth_desc(std::vector<const SubUnit*>& units);

// Copy-free BIN PACKING feasibility probe (pool must already be capacity
// sorted by the caller or not — it is re-sorted internally).
[[nodiscard]] PackProbe bin_packing_probe(std::vector<AllocBroker> pool,
                                          std::vector<const SubUnit*> units,
                                          const PublisherTable& table);

}  // namespace greenps
