// BIN PACKING (Section IV-B): like FBF but subscriptions are first sorted
// by descending bandwidth requirement (first-fit-decreasing). O(S log S);
// consistently allocates about one broker fewer than FBF.
#pragma once

#include "alloc/allocation.hpp"

namespace greenps {

[[nodiscard]] Allocation bin_packing_allocate(std::vector<AllocBroker> pool,
                                              std::vector<SubUnit> units,
                                              const PublisherTable& table);

// Sort units by descending output-bandwidth requirement (stable tiebreak on
// first member id for determinism). Exposed for CRAM, which re-runs
// BIN PACKING as its allocation test.
void sort_units_by_bandwidth_desc(std::vector<SubUnit>& units);
void sort_units_by_bandwidth_desc(std::vector<const SubUnit*>& units);

// The strict ordering behind those sorts (bandwidth descending, first-member
// id ascending — a total order since member ids are unique across units).
// Exposed so CRAM can splice a tentative cluster unit into an already-sorted
// probe vector at exactly the position a full re-sort would give it.
[[nodiscard]] bool unit_order_less(const SubUnit& a, const SubUnit& b);

// Copy-free BIN PACKING feasibility probe (pool must already be capacity
// sorted by the caller or not — it is re-sorted internally).
[[nodiscard]] PackProbe bin_packing_probe(std::vector<AllocBroker> pool,
                                          std::vector<const SubUnit*> units,
                                          const PublisherTable& table);

}  // namespace greenps
