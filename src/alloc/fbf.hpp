// Fastest Broker First (Section IV-A): brokers sorted by descending output
// bandwidth; subscriptions drawn in random order and placed on the most
// resourceful broker with capacity. O(S).
#pragma once

#include "alloc/allocation.hpp"
#include "common/rng.hpp"

namespace greenps {

[[nodiscard]] Allocation fbf_allocate(std::vector<AllocBroker> pool,
                                      std::vector<SubUnit> units,
                                      const PublisherTable& table, Rng& rng);

}  // namespace greenps
