// Internal engine behind cram_allocate() and IncrementalCram.
//
// CramRun holds the full mutable state of one CRAM optimization — GIF pool,
// containment poset, clustering blacklist, best-partner cache and the
// checkpointed incremental packer — and exposes two drivers:
//
//   run()                      the one-shot convergence cram_allocate() uses
//   apply_delta()/reconverge() the subscription-churn delta path: splice
//                              added units in through the poset, dissolve
//                              units that lost members, and re-cluster only
//                              the dirty neighborhoods from the converged
//                              state (IncrementalCram wraps this).
//
// Not part of the public allocator API: include alloc/cram.hpp (one-shot)
// or alloc/cram_incremental.hpp (delta path) instead.
#pragma once

#include <algorithm>
#include <cassert>
#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "alloc/bin_packing.hpp"
#include "alloc/cram.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "poset/poset.hpp"

namespace greenps::cram_detail {

using Clock = std::chrono::steady_clock;

inline double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Left-fold cache for the k-search merged units: upto(m) is `seed`
// clustered, left to right, with arr[0..m). Each prefix is computed once by
// extending the longest cached shorter prefix, so the association order —
// and therefore every float in the merged unit — exactly matches the plain
// sequential fold the search used to recompute per midpoint. Map storage
// keeps references stable while parallel probes read already-computed
// prefixes; extension itself must stay on the calling thread.
class PrefixFold {
 public:
  PrefixFold(SubUnit seed, const SubUnit* arr, const PublisherTable& table)
      : arr_(arr), table_(table) {
    memo_.emplace(0, std::move(seed));
  }

  const SubUnit& upto(std::size_t m) {
    auto it = memo_.lower_bound(m);
    if (it != memo_.end() && it->first == m) return it->second;
    --it;  // memo_ always holds key 0
    std::size_t k = it->first;
    const SubUnit* cur = &it->second;
    while (k < m) {
      SubUnit next = cluster_units(*cur, arr_[k], table_);
      ++k;
      cur = &memo_.emplace(k, std::move(next)).first->second;
    }
    return *cur;
  }

 private:
  const SubUnit* arr_;
  const PublisherTable& table_;
  std::map<std::size_t, SubUnit> memo_;
};

class CramRun {
 public:
  CramRun(std::vector<AllocBroker> pool, std::vector<SubUnit> units,
          const PublisherTable& table, const CramOptions& opts)
      : pool_(std::move(pool)), table_(table), opts_(opts),
        packer_(pool_, opts.probe_checkpoint_stride),
        threads_(ThreadPool::resolve(opts.threads)) {
    sort_by_capacity_desc(pool_);
    stats_.initial_units = units.size();
    stats_.threads_used = threads_;
    // Speculation depth for the parallel k-search: the deepest level count
    // whose frontier (2^L − 1 midpoints) still resolves more decision
    // levels per parallel round than a sequential probe would — with few
    // threads the speculative waste outweighs the depth and L stays 0.
    if (threads_ > 1) {
      double best_rate = 1.0;  // sequential: one level per probe round
      for (std::size_t l = 2; l <= 4; ++l) {
        const std::size_t probes = (std::size_t{1} << l) - 1;
        const auto rounds = static_cast<double>((probes + threads_ - 1) / threads_);
        const double rate = static_cast<double>(l) / rounds;
        if (rate > best_rate) {
          best_rate = rate;
          spec_levels_ = l;
        }
      }
    }
    std::vector<Gif> grouped = opts_.gif_grouping ? group_identical_filters(std::move(units))
                                                  : singleton_gifs(std::move(units));
    stats_.gif_count = grouped.size();
    next_id_ = grouped.size();
    for (auto& g : grouped) {
      const std::uint64_t id = g.id;
      // Warm the cardinality cache now: the parallel pair search reads gif
      // profiles concurrently and pairwise_counts consults the cache, so it
      // must be filled before the profile is ever shared across threads.
      (void)g.profile.cardinality();
      gifs_.emplace(id, std::move(g));
    }
  }

  CramResult run() {
    GREENPS_SPAN("cram.run");
    const auto t0 = Clock::now();
    // Initialization: allocate without clustering; abort if impossible.
    const PackProbe init = probe_allocation();
    if (!init.success) {
      CramResult r;
      r.stats = stats_;
      r.stats.total_seconds = seconds_since(t0);
      publish_stats(r.stats);
      return r;
    }
    best_brokers_ = init.brokers_used;

    // Build the poset over GIFs (optimization 2).
    const auto tp = Clock::now();
    if (opts_.poset_pruning) {
      GREENPS_SPAN_TAGGED("cram.poset_build", gifs_.size());
      for (const auto& [id, g] : gifs_) {
        const auto ins = poset_.insert(g.profile, id);
        assert(ins.inserted || !opts_.gif_grouping);
        node_of_[id] = ins.node;
      }
    }
    stats_.poset_build_seconds = seconds_since(tp);

    // Prime the best-partner cache.
    for (const auto& [id, g] : gifs_) {
      (void)g;
      dirty_.insert(id);
    }

    converge();

    CramResult r;
    // The pool state always matches the last successful allocation (failed
    // clusterings are never committed), so one final packing materializes it.
    r.allocation = bin_packing_allocate(pool_, flatten(), table_);
    assert(r.allocation.success);
    r.stats = stats_;
    r.stats.final_units = r.allocation.unit_count();
    r.stats.total_seconds = seconds_since(t0);
    publish_stats(r.stats);
    return r;
  }

  // --- incremental delta path (IncrementalCram) -----------------------
  //
  // apply_delta() mutates the converged state (poset insert/remove, GIF
  // dissolution) and marks the touched neighborhoods dirty; reconverge()
  // then re-runs the clustering loop, which re-searches only the dirty
  // GIFs. Costs scale with the delta, not the subscription population.

  struct DeltaOutcome {
    std::size_t added_units = 0;
    std::size_t removed_found = 0;        // delta members actually located
    std::size_t units_dissolved = 0;      // clusters that lost a member
    std::size_t survivors_reinserted = 0; // members carried into shrunk units
    std::size_t gifs_removed = 0;
    std::size_t blacklist_cleared = 0;    // dirty/dead pairs eligible again
  };

  // Apply one batch of unit-level deltas. `added` must be singleton
  // subscription units. Each removed SubId is located in its (possibly
  // clustered) unit; a cluster that loses members is shrunk IN PLACE — the
  // survivors re-enter as one rebuilt unit (profile re-OR'd from their
  // `originals`), not as singletons, so a removal dirties one neighborhood
  // instead of re-clustering every surviving member from scratch.
  // Re-clustering is NOT performed here — call reconverge().
  DeltaOutcome apply_delta(std::vector<SubUnit> added, const std::vector<SubId>& removed,
                           const std::unordered_map<SubId, SubUnit>& originals) {
    DeltaOutcome out;
    // The packer's pending adopt/resume hints describe the pre-delta unit
    // sequence; mutating units under them would corrupt the next base.
    // Force a from-scratch rebuild at the next ensure_base() instead.
    drop_pending_base();

    if (!removed.empty()) {
      const std::unordered_set<SubId> rm(removed.begin(), removed.end());
      // Locate every unit holding a removed member: one scan of all units.
      std::vector<std::pair<std::uint64_t, std::vector<std::size_t>>> hits;
      for (const auto& [id, g] : gifs_) {
        std::vector<std::size_t> idx;
        for (std::size_t i = 0; i < g.units.size(); ++i) {
          for (const SubId m : g.units[i].members) {
            if (rm.contains(m)) {
              idx.push_back(i);
              break;
            }
          }
        }
        if (!idx.empty()) hits.emplace_back(id, std::move(idx));
      }
      std::vector<SubUnit> shrunk;
      for (auto& [id, idxs] : hits) {
        Gif& g = gif(id);
        // Erase hit units back to front so earlier indexes stay valid.
        for (auto it = idxs.rbegin(); it != idxs.rend(); ++it) {
          SubUnit u = std::move(g.units[*it]);
          g.units.erase(g.units.begin() + static_cast<std::ptrdiff_t>(*it));
          if (u.members.size() > 1) ++out.units_dissolved;
          // Rebuild the unit from its surviving members' original
          // profiles (a union cannot be subtracted from, so re-OR).
          SubUnit rebuilt;
          bool have = false;
          for (const SubId m : u.members) {
            if (rm.contains(m)) {
              ++out.removed_found;
              continue;
            }
            const auto oit = originals.find(m);
            assert(oit != originals.end());
            if (oit == originals.end()) continue;
            ++out.survivors_reinserted;
            rebuilt = have ? cluster_units(rebuilt, oit->second, table_) : oit->second;
            have = true;
          }
          if (have) shrunk.push_back(std::move(rebuilt));
        }
        if (g.units.empty()) {
          remove_gif(id);
          ++out.gifs_removed;
        } else {
          dirty_.insert(id);
        }
      }
      for (SubUnit& s : shrunk) commit_new_unit(std::move(s));
    }

    out.added_units = added.size();
    for (SubUnit& u : added) {
      assert(u.members.size() == 1 && "delta additions must be singleton units");
      commit_new_unit(std::move(u));
    }

    // The packing changed under every dirty neighborhood, so clusterings it
    // previously rejected for capacity may now fit — a from-scratch run
    // carries no blacklist at all. Also purge pairs naming dead GIF ids so
    // the blacklist cannot grow without bound under churn.
    for (auto it = blacklist_.begin(); it != blacklist_.end();) {
      const bool dead = !gifs_.contains(it->lo) || !gifs_.contains(it->hi);
      if (dead || dirty_.contains(it->lo) || dirty_.contains(it->hi)) {
        it = blacklist_.erase(it);
        ++out.blacklist_cleared;
      } else {
        ++it;
      }
    }
    return out;
  }

  // Re-run the clustering loop from the current (dirtied) state. Stats are
  // per-call: closeness_computations / allocation_runs / seconds cover only
  // this reconvergence, so callers can compare against a from-scratch run.
  CramResult reconverge() {
    GREENPS_SPAN("cram.reconverge");
    const auto t0 = Clock::now();
    stats_ = CramStats{};
    stats_.threads_used = threads_;
    stats_.gif_count = gifs_.size();
    for (const auto& [id, g] : gifs_) {
      (void)id;
      stats_.initial_units += g.units.size();
    }
    // Same discipline as run()'s initialization: the reference broker count
    // for the minimization gate is the current base packing (removals may
    // have freed brokers, additions may legitimately need more).
    best_brokers_ = 0;
    const PackProbe init = probe_allocation();
    if (!init.success) {
      CramResult r;
      r.stats = stats_;
      r.stats.total_seconds = seconds_since(t0);
      publish_stats(r.stats);
      return r;
    }
    best_brokers_ = init.brokers_used;

    converge();

    CramResult r;
    r.allocation = bin_packing_allocate(pool_, flatten(), table_);
    assert(r.allocation.success);
    r.stats = stats_;
    r.stats.final_units = r.allocation.unit_count();
    r.stats.total_seconds = seconds_since(t0);
    publish_stats(r.stats);
    return r;
  }

  [[nodiscard]] std::size_t gif_count() const { return gifs_.size(); }
  [[nodiscard]] std::size_t dirty_count() const { return dirty_.size(); }
  [[nodiscard]] const ProfilePoset& poset() const { return poset_; }

 private:
  struct Candidate {
    std::uint64_t partner = 0;
    double closeness = 0;
  };

  // The greedy clustering loop shared by run() and reconverge(): refresh
  // the dirty best-partner caches, pick the global best, try it, repeat
  // until no candidate survives.
  void converge() {
    while (stats_.iterations < opts_.max_iterations) {
      const auto ts = Clock::now();
      {
        // Tagged with the round's dirty-set size: the trace shows how the
        // re-search load shrinks as the candidate cache warms up.
        GREENPS_SPAN_TAGGED("cram.pair_search", dirty_.size());
        refresh_dirty();
      }
      stats_.pair_search_seconds += seconds_since(ts);
      const auto pick = pick_global_best();
      if (!pick) break;
      ++stats_.iterations;
      const auto [gid, cand] = *pick;
      if (gid == cand.partner) {
        try_self_cluster(gid);
      } else {
        try_pair(gid, cand.partner, cand.closeness);
      }
    }
  }

  // Mirror the run's stats into the global metrics registry (counters
  // accumulate across runs; seconds are per-run gauges).
  static void publish_stats(const CramStats& s) {
    auto& reg = obs::MetricsRegistry::global();
    reg.counter("cram.iterations").add(s.iterations);
    reg.counter("cram.allocation_runs").add(s.allocation_runs);
    reg.counter("cram.closeness_computations").add(s.closeness_computations);
    reg.counter("cram.clusterings_applied").add(s.clusterings_applied);
    reg.counter("cram.clusterings_rejected").add(s.clusterings_rejected);
    reg.counter("cram.one_to_many_applied").add(s.one_to_many_applied);
    reg.counter("cram.speculative_probes").add(s.speculative_probes);
    reg.counter("cram.probe_units_packed").add(s.probe_units_packed);
    reg.counter("cram.probe_units_skipped").add(s.probe_units_skipped);
    reg.counter("cram.base_rebuilds").add(s.base_rebuilds);
    reg.gauge("cram.final_units").set(static_cast<double>(s.final_units));
    reg.gauge("cram.total_seconds").set(s.total_seconds);
    reg.gauge("cram.pair_search_seconds").set(s.pair_search_seconds);
    reg.gauge("cram.probe_seconds").set(s.probe_seconds);
    GREENPS_COUNTER("cram.final_units", s.final_units);
  }

  // Everything one best-partner search produces. Searches are pure reads of
  // the run state, so the dirty set can be refreshed in parallel; outcomes
  // are merged after the join in ascending-id order, which makes the result
  // bit-identical for every thread count.
  struct SearchOutcome {
    std::optional<Candidate> best;
    // (other, closeness) pairs that beat `other`'s cached candidate at
    // search time — the symmetric-improvement propagation, deferred.
    std::vector<std::pair<std::uint64_t, double>> improvements;
    std::size_t closeness_computations = 0;
  };

  // ---- bookkeeping ----

  Gif& gif(std::uint64_t id) {
    const auto it = gifs_.find(id);
    assert(it != gifs_.end());
    return it->second;
  }

  [[nodiscard]] bool blacklisted(std::uint64_t a, std::uint64_t b) const {
    return blacklist_.contains(make_gif_pair_key(a, b));
  }
  void add_blacklist(std::uint64_t a, std::uint64_t b) {
    blacklist_.insert(make_gif_pair_key(a, b));
    dirty_.insert(a);
    dirty_.insert(b);
  }

  std::vector<SubUnit> flatten() const {
    std::vector<SubUnit> all;
    for (const auto& [id, g] : gifs_) {
      (void)id;
      all.insert(all.end(), g.units.begin(), g.units.end());
    }
    return all;
  }

  // ---- allocation probes ----
  //
  // CRAM's allocation test is a BIN PACKING feasibility probe served by an
  // incremental packer (CheckpointedFirstFit): the committed unit set is
  // packed once into a checkpointed base, and every tentative clustering is
  // probed as an overlay (base minus the units being merged, plus the
  // merged unit spliced in at its sort position) resumed from the nearest
  // checkpoint before the overlay's first divergence from the base. No GIF
  // is mutated by a probe, so rejected clusterings have nothing to restore,
  // and a commit's winning probe already packed exactly the next base — it
  // is adopted outright, so commits re-pack nothing at all.

  // Unknown divergence: the next rebuild packs from scratch.
  void invalidate_base() {
    if (base_valid_) pending_resume_ = 0;
    base_valid_ = false;
  }

  // Discard any pending adopt/resume hint outright: the next ensure_base()
  // packs from scratch. Required before delta mutations, whose changes the
  // commit discipline never described.
  void drop_pending_base() {
    base_valid_ = false;
    have_adopted_ = false;
    pending_resume_ = 0;
  }

  // A committed overlay: the winning probe's packing IS the next base, so
  // record it for adoption — the next ensure_base installs it without
  // packing a single unit. Checkpoints before the divergence position stay
  // valid. Must run while the base is still valid and `removed` still
  // points into live GIF unit vectors — i.e. before the commit erases
  // anything.
  void commit_base(const std::vector<UnitRange>& removed, const SubUnit* added,
                   const PackProbe& winning) {
    const std::size_t pos = packer_.divergence_position(removed, added);
    pending_resume_ = base_valid_ ? pos : std::min(pending_resume_, pos);
    base_valid_ = false;
    adopted_ = winning;
    have_adopted_ = true;
  }

  void ensure_base() {
    if (base_valid_) return;
    const auto t0 = Clock::now();
    std::size_t total = 0;
    for (const auto& [id, g] : gifs_) {
      (void)id;
      total += g.units.size();
    }
    std::vector<const SubUnit*> units;
    units.reserve(total);
    for (const auto& [id, g] : gifs_) {
      (void)id;
      for (const SubUnit& u : g.units) units.push_back(&u);
    }
    if (have_adopted_) {
      // The unit multiset is exactly the committed overlay the adopted probe
      // packed (base − removed + merged), so no packing is needed.
      packer_.adopt(std::move(units), pending_resume_, adopted_);
      have_adopted_ = false;
    } else {
      const PackProbe& base = packer_.rebuild(std::move(units), table_, pending_resume_);
      ++stats_.base_rebuilds;
      count_probe_work(base);
    }
    pending_resume_ = 0;
    base_valid_ = true;
    stats_.probe_seconds += seconds_since(t0);
  }

  void count_probe_work(const PackProbe& p) {
    stats_.probe_units_packed += p.units_packed;
    stats_.probe_units_skipped += p.units_skipped;
  }

  // Broker minimization is CRAM's primary objective, so a clustering whose
  // re-packed allocation needs MORE brokers than the last recorded scheme
  // also fails (clusters are indivisible and can fragment FFD packing).
  PackProbe gate(PackProbe probe) const {
    if (probe.success && best_brokers_ > 0 && probe.brokers_used > best_brokers_) {
      probe.success = false;
    }
    return probe;
  }

  PackProbe probe_allocation() {
    ensure_base();
    ++stats_.allocation_runs;
    return gate(packer_.base());
  }

  PackProbe probe_replacement(const std::vector<UnitRange>& removed, const SubUnit& added) {
    ensure_base();
    const auto t0 = Clock::now();
    const PackProbe raw = packer_.probe_replacement(removed, &added, table_, probe_scratch_);
    stats_.probe_seconds += seconds_since(t0);
    ++stats_.allocation_runs;
    count_probe_work(raw);
    return gate(raw);
  }

  // One accounted decision-path probe of `probe_at` (see search_max).
  template <typename ProbeAt>
  PackProbe decision_probe(std::size_t k, const ProbeAt& probe_at) {
    const auto t0 = Clock::now();
    const PackProbe raw = probe_at(k, probe_scratch_);
    stats_.probe_seconds += seconds_since(t0);
    ++stats_.allocation_runs;
    count_probe_work(raw);
    return gate(raw);
  }

  // Binary search for the largest value in [lo, hi] whose overlay still
  // allocates, given that `lo` already passed with `winning`.
  //
  // probe_at(k, scratch) must be a pure raw (ungated) overlay probe and
  // materialize(k) must prepare its merged unit; with enough threads, the
  // midpoints of the next spec_levels_ decision levels are evaluated
  // speculatively in parallel (probes only read the base packing and
  // per-worker scratch), and the decision path is then replayed out of the
  // batch — so the result, the gate decisions and all decision-path
  // accounting are exactly the sequential ones for every thread count.
  template <typename Materialize, typename ProbeAt>
  std::size_t search_max(std::size_t lo, std::size_t hi, PackProbe& winning,
                         const Materialize& materialize, const ProbeAt& probe_at) {
    auto consume = [&](const PackProbe& raw, std::size_t mid) {
      ++stats_.allocation_runs;
      count_probe_work(raw);
      const PackProbe gated = gate(raw);
      if (gated.success) {
        lo = mid;
        winning = gated;
      } else {
        hi = mid - 1;
      }
    };
    while (lo < hi) {
      if (spec_levels_ < 2 || hi - lo < 2) {
        const std::size_t mid = lo + (hi - lo + 1) / 2;
        materialize(mid);
        const auto t0 = Clock::now();
        const PackProbe raw = probe_at(mid, probe_scratch_);
        stats_.probe_seconds += seconds_since(t0);
        consume(raw, mid);
        continue;
      }
      // Frontier of every state reachable within spec_levels_ decisions.
      std::vector<std::size_t> mids;
      std::vector<std::pair<std::size_t, std::size_t>> frontier{{lo, hi}};
      for (std::size_t level = 0; level < spec_levels_ && !frontier.empty(); ++level) {
        std::vector<std::pair<std::size_t, std::size_t>> next;
        for (const auto& [a, b] : frontier) {
          if (a >= b) continue;
          const std::size_t mid = a + (b - a + 1) / 2;
          mids.push_back(mid);
          next.emplace_back(mid, b);      // if the probe at mid succeeds
          next.emplace_back(a, mid - 1);  // if it fails
        }
        frontier = std::move(next);
      }
      std::sort(mids.begin(), mids.end());
      mids.erase(std::unique(mids.begin(), mids.end()), mids.end());
      // Merged units are fold extensions — serialize them before the batch
      // so the parallel probes perform read-only lookups.
      for (const std::size_t mid : mids) materialize(mid);
      if (!workers_) workers_ = std::make_unique<ThreadPool>(threads_);
      if (spec_scratch_.size() < workers_->size()) spec_scratch_.resize(workers_->size());
      std::vector<PackProbe> raw(mids.size());
      const auto t0 = Clock::now();
      {
        GREENPS_SPAN_TAGGED("cram.spec_batch", mids.size());
        workers_->parallel_for_indexed(mids.size(), [&](std::size_t i, std::size_t slot) {
          raw[i] = probe_at(mids[i], spec_scratch_[slot]);
        });
      }
      stats_.probe_seconds += seconds_since(t0);
      // Replay the decision path out of the batch.
      std::size_t used = 0;
      while (lo < hi) {
        const std::size_t mid = lo + (hi - lo + 1) / 2;
        const auto it = std::lower_bound(mids.begin(), mids.end(), mid);
        if (it == mids.end() || *it != mid) break;  // beyond the batched levels
        ++used;
        consume(raw[static_cast<std::size_t>(it - mids.begin())], mid);
      }
      stats_.speculative_probes += mids.size() - used;
    }
    return lo;
  }

  // Register a brand-new gif holding `unit` (profile may equal an existing
  // gif's, in which case the unit joins that gif). Returns the gif id the
  // unit ended up in.
  std::uint64_t commit_new_unit(SubUnit unit) {
    // Keeps any divergence hint a commit already recorded: the new unit
    // splices in at (or after) that position, so earlier checkpoints hold.
    invalidate_base();
    if (opts_.poset_pruning) {
      const std::uint64_t id = next_id_++;
      const auto ins = poset_.insert(unit.profile, id);
      if (!ins.inserted) {
        const std::uint64_t existing = poset_.payload(ins.node);
        Gif& g = gif(existing);
        g.units.push_back(std::move(unit));
        g.sort_units();
        dirty_.insert(existing);
        return existing;
      }
      Gif g;
      g.id = id;
      g.profile = unit.profile;
      (void)g.profile.cardinality();  // warm before sharing across threads
      g.units.push_back(std::move(unit));
      gifs_.emplace(id, std::move(g));
      node_of_[id] = ins.node;
      dirty_.insert(id);
      return id;
    }
    // No poset: look for an equal gif by scan (grouping may be off too, in
    // which case every unit is its own gif and we still merge equal bits to
    // keep the pool small).
    for (auto& [id, g] : gifs_) {
      if (opts_.gif_grouping && SubscriptionProfile::same_bits(g.profile, unit.profile)) {
        g.units.push_back(std::move(unit));
        g.sort_units();
        dirty_.insert(id);
        return id;
      }
    }
    const std::uint64_t id = next_id_++;
    Gif g;
    g.id = id;
    g.profile = unit.profile;
    (void)g.profile.cardinality();  // warm before sharing across threads
    g.units.push_back(std::move(unit));
    gifs_.emplace(id, std::move(g));
    dirty_.insert(id);
    return id;
  }

  void remove_gif(std::uint64_t id) {
    // Only ever called for GIFs whose units were already erased (and
    // accounted in a divergence hint), so the hint survives.
    invalidate_base();
    if (opts_.poset_pruning) {
      const auto it = node_of_.find(id);
      if (it != node_of_.end()) {
        poset_.remove(it->second);
        node_of_.erase(it);
      }
    }
    gifs_.erase(id);
    best_.erase(id);
    dirty_.erase(id);
    // Anyone whose cached partner was this gif must re-search.
    for (const auto& [other, cand] : best_) {
      if (cand.partner == id) dirty_.insert(other);
    }
  }

  // ---- candidate search ----

  void refresh_dirty() {
    if (dirty_.empty()) return;
    std::vector<std::uint64_t> ids;
    ids.reserve(dirty_.size());
    for (const std::uint64_t id : dirty_) {
      if (gifs_.contains(id)) ids.push_back(id);
    }
    dirty_.clear();
    std::sort(ids.begin(), ids.end());

    std::vector<SearchOutcome> outcomes(ids.size());
    if (threads_ > 1 && ids.size() > 1) {
      if (!workers_) workers_ = std::make_unique<ThreadPool>(threads_);
      workers_->parallel_for(ids.size(),
                             [&](std::size_t i) { outcomes[i] = find_best_partner(ids[i]); });
    } else {
      for (std::size_t i = 0; i < ids.size(); ++i) outcomes[i] = find_best_partner(ids[i]);
    }

    // Post-join merge in ascending-id order: first every search's own
    // result, then the symmetric improvements (which only ever raise a
    // cached closeness). Deterministic for any thread count.
    for (std::size_t i = 0; i < ids.size(); ++i) {
      stats_.closeness_computations += outcomes[i].closeness_computations;
      if (outcomes[i].best) {
        best_[ids[i]] = *outcomes[i].best;
      } else {
        best_.erase(ids[i]);
      }
    }
    for (std::size_t i = 0; i < ids.size(); ++i) {
      for (const auto& [other, c] : outcomes[i].improvements) {
        const auto it = best_.find(other);
        if (it != best_.end() && c > it->second.closeness) {
          it->second = Candidate{ids[i], c};
        }
      }
    }
  }

  std::optional<std::pair<std::uint64_t, Candidate>> pick_global_best() const {
    std::optional<std::pair<std::uint64_t, Candidate>> best;
    for (const auto& [id, cand] : best_) {
      if (!best || cand.closeness > best->second.closeness ||
          (cand.closeness == best->second.closeness && id < best->first)) {
        best = {id, cand};
      }
    }
    return best;
  }

  // Pure read of the run state (gifs_, poset_, blacklist_, best_ are all
  // snapshots during a refresh) — runs concurrently across dirty GIFs.
  SearchOutcome find_best_partner(std::uint64_t id) const {
    const auto git = gifs_.find(id);
    assert(git != gifs_.end());
    const Gif& g = git->second;
    SearchOutcome out;
    auto close = [&](const SubscriptionProfile& a, const SubscriptionProfile& b) {
      ++out.closeness_computations;
      return closeness(opts_.metric, a, b);
    };
    auto consider = [&](std::uint64_t other, double c) {
      if (c <= 0) return;
      if (blacklisted(id, other)) return;
      if (!out.best || c > out.best->closeness ||
          (c == out.best->closeness && other < out.best->partner)) {
        out.best = Candidate{other, c};
      }
      // Symmetric improvement propagation: a freshly computed closeness may
      // beat `other`'s cached candidate. Recorded here, applied post-join.
      if (other != id) {
        const auto it = best_.find(other);
        if (it != best_.end() && c > it->second.closeness) {
          out.improvements.emplace_back(other, c);
        }
      }
    };

    // Self pair: a GIF with two or more units can cluster with itself.
    if (g.units.size() >= 2) consider(id, close(g.profile, g.profile));

    if (!opts_.poset_pruning) {
      for (const auto& [other, og] : gifs_) {
        if (other == id) continue;
        consider(other, close(g.profile, og.profile));
      }
      return out;
    }

    // Poset-guided breadth-first search (optimization 2): prune subtrees
    // with empty relation (closeness 0 under INTERSECT/IOS/IOU) and stop
    // descending once the closeness value starts to decrease. XOR admits
    // neither prune, so it degenerates to a full walk.
    const bool prunes = metric_prunes_empty(opts_.metric);
    struct Item {
      ProfilePoset::NodeId node;
      double parent_c;
    };
    std::vector<Item> queue;
    std::unordered_set<ProfilePoset::NodeId> seen;
    for (const auto c : poset_.children(ProfilePoset::kRoot)) {
      queue.push_back({c, -1.0});
      seen.insert(c);
    }
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const Item item = queue[head];
      const std::uint64_t other = poset_.payload(item.node);
      const auto oit = gifs_.find(other);
      if (oit == gifs_.end()) continue;
      const double c = close(g.profile, oit->second.profile);
      if (other != id) consider(other, c);
      bool descend = true;
      if (prunes) {
        if (c == 0.0 && other != id) descend = false;          // empty relation
        if (descend && c < item.parent_c) descend = false;     // started decreasing
      }
      if (descend) {
        for (const auto ch : poset_.children(item.node)) {
          if (seen.insert(ch).second) queue.push_back({ch, c});
        }
      }
    }
    return out;
  }

  // ---- clustering actions ----

  // Try clustering within one GIF (equal relation, Section IV-C.1): find by
  // binary search the largest k such that merging the k lightest units
  // still allocates. Feasibility is probed through overlays; the GIF is
  // mutated only once, on commit.
  void try_self_cluster(std::uint64_t gid) {
    Gif& g = gif(gid);
    const std::size_t n = g.units.size();
    assert(n >= 2);
    ensure_base();
    // merged(k) = the k lightest units folded left to right — cached as
    // fold prefixes: upto(k − 1) is units[0] clustered with units[1..k).
    PrefixFold fold(g.units[0], g.units.data() + 1, table_);
    auto materialize = [&](std::size_t k) { (void)fold.upto(k - 1); };
    auto probe_at = [&](std::size_t k, CheckpointedFirstFit::Scratch& scratch) {
      return packer_.probe_replacement({{g.units.data(), g.units.data() + k}},
                                       &fold.upto(k - 1), table_, scratch);
    };
    materialize(2);
    PackProbe winning = decision_probe(2, probe_at);  // doubles as the feasibility gate
    if (!winning.success) {
      ++stats_.clusterings_rejected;
      add_blacklist(gid, gid);
      return;
    }
    const std::size_t lo = search_max(2, n, winning, materialize, probe_at);
    // Commit k = lo.
    SubUnit merged = fold.upto(lo - 1);
    commit_base({{g.units.data(), g.units.data() + lo}}, &merged, winning);
    g.units.erase(g.units.begin(), g.units.begin() + static_cast<std::ptrdiff_t>(lo));
    g.units.push_back(std::move(merged));
    g.sort_units();
    best_brokers_ = winning.brokers_used;
    ++stats_.clusterings_applied;
    dirty_.insert(gid);
    if (g.units.size() < 2) add_blacklist(gid, gid);
  }

  // Dispatch a cross-GIF pair by its bit-vector relation.
  void try_pair(std::uint64_t a, std::uint64_t b, double pair_closeness) {
    const Relation rel = SubscriptionProfile::relation(gif(a).profile, gif(b).profile);
    switch (rel) {
      case Relation::kEmpty:
        // Only reachable under XOR (which clusters disjoint GIFs, the
        // pathology Section IV-C.2 describes) — treat as a plain pairwise
        // merge.
      case Relation::kEqual:
      case Relation::kIntersect: {
        if (opts_.one_to_many && rel == Relation::kIntersect) {
          if (try_one_to_many(a, b, pair_closeness) ||
              try_one_to_many(b, a, pair_closeness)) {
            return;
          }
        }
        try_pairwise_merge(a, b);
        return;
      }
      case Relation::kSuperset:
        try_cover_cluster(a, b);
        return;
      case Relation::kSubset:
        try_cover_cluster(b, a);
        return;
    }
  }

  // Merge the lightest unit of each GIF into a new cluster unit.
  void try_pairwise_merge(std::uint64_t a, std::uint64_t b) {
    Gif& ga = gif(a);
    Gif& gb = gif(b);
    SubUnit merged = cluster_units(ga.units.front(), gb.units.front(), table_);
    const std::vector<UnitRange> removed{
        {ga.units.data(), ga.units.data() + 1}, {gb.units.data(), gb.units.data() + 1}};
    const PackProbe probe = probe_replacement(removed, merged);
    if (!probe.success) {
      ++stats_.clusterings_rejected;
      add_blacklist(a, b);
      return;
    }
    commit_base(removed, &merged, probe);
    ga.units.erase(ga.units.begin());
    gb.units.erase(gb.units.begin());
    best_brokers_ = probe.brokers_used;
    ++stats_.clusterings_applied;
    if (ga.units.empty()) {
      remove_gif(a);
    } else {
      dirty_.insert(a);
    }
    if (gb.units.empty()) {
      remove_gif(b);
    } else {
      dirty_.insert(b);
    }
    commit_new_unit(std::move(merged));
  }

  // Covering relation: cluster the lightest unit of the covering GIF with
  // as many (binary search) lightest units of the covered GIF as possible.
  void try_cover_cluster(std::uint64_t cover_id, std::uint64_t covered_id) {
    Gif& cover = gif(cover_id);
    Gif& covered = gif(covered_id);
    const std::size_t n = covered.units.size();
    ensure_base();
    // merged(m) = cover's lightest folded with covered's m lightest; the
    // profile never changes (covered ⊆ cover), only the unit load does.
    PrefixFold fold(cover.units.front(), covered.units.data(), table_);
    auto materialize = [&](std::size_t m) { (void)fold.upto(m); };
    auto probe_at = [&](std::size_t m, CheckpointedFirstFit::Scratch& scratch) {
      return packer_.probe_replacement({{cover.units.data(), cover.units.data() + 1},
                                        {covered.units.data(), covered.units.data() + m}},
                                       &fold.upto(m), table_, scratch);
    };
    materialize(1);
    PackProbe winning = decision_probe(1, probe_at);  // doubles as the feasibility gate
    if (!winning.success) {
      ++stats_.clusterings_rejected;
      add_blacklist(cover_id, covered_id);
      return;
    }
    const std::size_t lo = search_max(1, n, winning, materialize, probe_at);
    SubUnit merged = fold.upto(lo);
    commit_base({{cover.units.data(), cover.units.data() + 1},
                 {covered.units.data(), covered.units.data() + lo}},
                &merged, winning);
    cover.units.erase(cover.units.begin());
    covered.units.erase(covered.units.begin(),
                        covered.units.begin() + static_cast<std::ptrdiff_t>(lo));
    cover.units.push_back(std::move(merged));
    cover.sort_units();
    best_brokers_ = winning.brokers_used;
    ++stats_.clusterings_applied;
    dirty_.insert(cover_id);
    if (covered.units.empty()) {
      remove_gif(covered_id);
    } else {
      dirty_.insert(covered_id);
    }
  }

  // Optimization 3 (Section IV-C.3): before clustering an intersect pair,
  // try clustering `parent` with a Covered GIF Set chosen by greedy set
  // cover. Valid only if the CGS closeness beats the pair's and the result
  // allocates. Returns true if applied.
  bool try_one_to_many(std::uint64_t parent_id, std::uint64_t other_id,
                       double pair_closeness) {
    Gif& parent = gif(parent_id);
    // Covered GIFs: poset descendants, or a scan when the poset is off.
    std::vector<std::uint64_t> covered;
    if (opts_.poset_pruning) {
      const auto nit = node_of_.find(parent_id);
      if (nit == node_of_.end()) return false;
      for (const auto d : poset_.descendants(nit->second)) {
        const std::uint64_t pid = poset_.payload(d);
        if (gifs_.contains(pid)) covered.push_back(pid);
      }
    } else {
      for (const auto& [id, g] : gifs_) {
        if (id == parent_id) continue;
        if (SubscriptionProfile::covers(parent.profile, g.profile) &&
            !SubscriptionProfile::same_bits(parent.profile, g.profile)) {
          covered.push_back(id);
        }
      }
    }
    if (covered.empty()) return false;

    // Load budget: the CGS-parent cluster must not exceed the load of the
    // original candidate pair.
    const Bandwidth budget =
        parent.units.front().out_bw + gif(other_id).units.front().out_bw;
    Bandwidth spent = parent.units.front().out_bw;

    // Greedy set cover over the covered GIFs: repeatedly take the GIF whose
    // bits add the most coverage not already in the CGS.
    SubscriptionProfile cgs_profile;
    std::vector<std::uint64_t> chosen;
    std::unordered_set<std::uint64_t> remaining(covered.begin(), covered.end());
    while (!remaining.empty()) {
      std::uint64_t best_id = 0;
      std::size_t best_gain = 0;
      for (const std::uint64_t cid : remaining) {
        const auto& cp = gif(cid).profile;
        const std::size_t gain =
            cp.cardinality() - SubscriptionProfile::intersect_count(cgs_profile, cp);
        if (gain > best_gain || (gain == best_gain && best_gain > 0 && cid < best_id)) {
          best_gain = gain;
          best_id = cid;
        }
      }
      if (best_gain == 0) break;
      const Bandwidth add_bw = gif(best_id).units.front().out_bw;
      if (spent + add_bw > budget) break;
      spent += add_bw;
      chosen.push_back(best_id);
      cgs_profile.merge(gif(best_id).profile);
      remaining.erase(best_id);
    }
    if (chosen.empty()) return false;
    if (closeness(opts_.metric, parent.profile, cgs_profile) <= pair_closeness) {
      ++stats_.closeness_computations;
      return false;
    }
    ++stats_.closeness_computations;

    // Cluster parent.lightest with the lightest unit of every chosen GIF,
    // probed through an overlay — no GIF is touched unless the probe
    // succeeds, so the failure path has nothing to restore. The merged
    // profile equals the parent's (all chosen are covered), so the unit
    // stays in the parent GIF.
    SubUnit merged = parent.units.front();
    std::vector<UnitRange> removed;
    removed.reserve(chosen.size() + 1);
    removed.push_back({parent.units.data(), parent.units.data() + 1});
    for (const std::uint64_t cid : chosen) {
      Gif& cg = gif(cid);
      merged = cluster_units(merged, cg.units.front(), table_);
      removed.push_back({cg.units.data(), cg.units.data() + 1});
    }

    const PackProbe probe = probe_replacement(removed, merged);
    if (!probe.success) {
      return false;  // fall back to the pairwise merge (no blacklist)
    }
    commit_base(removed, &merged, probe);
    parent.units.erase(parent.units.begin());
    for (const std::uint64_t cid : chosen) {
      Gif& cg = gif(cid);
      cg.units.erase(cg.units.begin());
    }
    parent.units.push_back(std::move(merged));
    parent.sort_units();
    best_brokers_ = probe.brokers_used;
    ++stats_.clusterings_applied;
    ++stats_.one_to_many_applied;
    dirty_.insert(parent_id);
    for (const std::uint64_t cid : chosen) {
      if (gif(cid).units.empty()) {
        remove_gif(cid);
      } else {
        dirty_.insert(cid);
      }
    }
    return true;
  }

  std::vector<AllocBroker> pool_;
  const PublisherTable& table_;
  CramOptions opts_;
  CramStats stats_;
  std::unordered_map<std::uint64_t, Gif> gifs_;
  std::uint64_t next_id_ = 0;
  ProfilePoset poset_;
  std::unordered_map<std::uint64_t, ProfilePoset::NodeId> node_of_;
  std::unordered_set<GifPairKey, GifPairKeyHash> blacklist_;
  std::unordered_map<std::uint64_t, Candidate> best_;
  std::unordered_set<std::uint64_t> dirty_;
  std::size_t best_brokers_ = 0;
  // Incremental allocation probe (see "allocation probes" above). Declared
  // after pool_ — the packer copies it before the ctor body sorts it (the
  // packer capacity-sorts its own copy).
  CheckpointedFirstFit packer_;
  CheckpointedFirstFit::Scratch probe_scratch_;
  std::vector<CheckpointedFirstFit::Scratch> spec_scratch_;  // one per worker slot
  bool base_valid_ = false;
  std::size_t pending_resume_ = 0;
  PackProbe adopted_;  // winning probe of the last committed overlay
  bool have_adopted_ = false;
  // Worker pool (pair search + speculative k-search), created on first use.
  std::size_t threads_ = 1;
  std::size_t spec_levels_ = 0;  // k-search speculation depth; 0 = sequential
  std::unique_ptr<ThreadPool> workers_;
};

}  // namespace greenps::cram_detail
