#include "alloc/bin_packing.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace greenps {

namespace {
std::uint64_t tiebreak_key(const SubUnit& u) {
  if (!u.members.empty()) return u.members.front().value();
  if (!u.child_members.empty()) return u.child_members.front().value();
  return 0;
}
}  // namespace

bool unit_order_less(const SubUnit& a, const SubUnit& b) {
  if (a.out_bw != b.out_bw) return a.out_bw > b.out_bw;
  return tiebreak_key(a) < tiebreak_key(b);
}

void sort_units_by_bandwidth_desc(std::vector<SubUnit>& units) {
  std::sort(units.begin(), units.end(),
            [](const SubUnit& a, const SubUnit& b) { return unit_order_less(a, b); });
}

void sort_units_by_bandwidth_desc(std::vector<const SubUnit*>& units) {
  std::sort(units.begin(), units.end(),
            [](const SubUnit* a, const SubUnit* b) { return unit_order_less(*a, *b); });
}

PackProbe bin_packing_probe(std::vector<AllocBroker> pool, std::vector<const SubUnit*> units,
                            const PublisherTable& table) {
  sort_by_capacity_desc(pool);
  sort_units_by_bandwidth_desc(units);
  return first_fit_probe(pool, units, table);
}

Allocation bin_packing_allocate(std::vector<AllocBroker> pool, std::vector<SubUnit> units,
                                const PublisherTable& table) {
  GREENPS_SPAN_TAGGED("alloc.bin_packing", units.size());
  sort_by_capacity_desc(pool);
  sort_units_by_bandwidth_desc(units);
  return first_fit(pool, units, table);
}

}  // namespace greenps
