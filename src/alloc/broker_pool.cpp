#include "alloc/broker_pool.hpp"

#include <algorithm>

namespace greenps {

void sort_by_capacity_desc(std::vector<AllocBroker>& brokers) {
  std::sort(brokers.begin(), brokers.end(), [](const AllocBroker& a, const AllocBroker& b) {
    if (a.out_bw != b.out_bw) return a.out_bw > b.out_bw;
    return a.id < b.id;
  });
}

bool BrokerLoad::fits(const SubUnit& u, const PublisherTable& table) const {
  // Output bandwidth: remaining must stay strictly positive.
  if (broker_.out_bw - (used_bw_ + u.out_bw) <= 0) return false;
  // Input rate of the union of hosted profiles, computed incrementally:
  // r(U ∪ u) = r(U) + r(u) − r(U ∩ u).
  const MsgRate new_in =
      in_rate_ + u.in_rate - SubscriptionProfile::intersection_rate(union_profile_, u.profile, table);
  const std::size_t new_filters = filter_count_ + u.filter_count;
  return new_in <= broker_.delay.max_matching_rate(new_filters);
}

void BrokerLoad::add(const SubUnit& u, const PublisherTable& table) {
  // Incremental union rate (same formula as fits(), so accept decisions and
  // accounting agree): r(U ∪ u) = r(U) + r(u) − r(U ∩ u).
  in_rate_ +=
      u.in_rate - SubscriptionProfile::intersection_rate(union_profile_, u.profile, table);
  union_profile_.merge(u.profile);
  used_bw_ += u.out_bw;
  filter_count_ += u.filter_count;
  unit_count_ += 1;
  if (keep_units_) units_.push_back(u);
}

}  // namespace greenps
