#include "alloc/broker_pool.hpp"

#include <algorithm>

namespace greenps {

void sort_by_capacity_desc(std::vector<AllocBroker>& brokers) {
  std::sort(brokers.begin(), brokers.end(), [](const AllocBroker& a, const AllocBroker& b) {
    if (a.out_bw != b.out_bw) return a.out_bw > b.out_bw;
    return a.id < b.id;
  });
}

bool BrokerLoad::admissible(const SubUnit& u, MsgRate* rate_out) const {
  // Output bandwidth: remaining must stay strictly positive (checked first —
  // a bandwidth reject costs no union walk).
  if (broker_.out_bw - (used_bw_ + u.out_bw) <= 0) return false;
  // Input rate of the union of hosted profiles, computed incrementally:
  // r(U ∪ u) = r(U) + r(u) − r(U ∩ u). The association (in_rate_ + u.in_rate)
  // − rate matches the historical fits() expression exactly so accept
  // decisions stay bit-identical.
  const MsgRate rate = union_.intersection_rate(u.profile);
  *rate_out = rate;
  const MsgRate new_in = in_rate_ + u.in_rate - rate;
  const std::size_t new_filters = filter_count_ + u.filter_count;
  return new_in <= broker_.delay.max_matching_rate(new_filters);
}

bool BrokerLoad::fits(const SubUnit& u, const PublisherTable& table) const {
  (void)table;
  MsgRate rate = 0;
  return admissible(u, &rate);
}

bool BrokerLoad::try_add(const SubUnit& u, const PublisherTable& table) {
  if (broker_.out_bw - (used_bw_ + u.out_bw) <= 0) return false;
  const MsgRate sum = in_rate_ + u.in_rate;
  const std::size_t new_filters = filter_count_ + u.filter_count;
  const MsgRate thresh = broker_.delay.max_matching_rate(new_filters);
  MsgRate rate;
  if (sum <= thresh) {
    // Every intersection term is >= 0, so new_in = sum − rate <= sum (IEEE
    // subtraction of a non-negative value never rounds above a representable
    // bound) — the unit provably fits and one fused walk both decides and
    // accounts, with the identical rate value and association the slow path
    // would produce.
    rate = union_.merge_with_rate(u.profile, table);
  } else {
    rate = union_.intersection_rate(u.profile);
    // Same expression and association as the historical fits().
    if (in_rate_ + u.in_rate - rate > thresh) return false;
    union_.merge(u.profile, table);
  }
  // Accounting matches the historical add(): in_rate_ += (u.in_rate − rate).
  in_rate_ += u.in_rate - rate;
  used_bw_ += u.out_bw;
  filter_count_ += u.filter_count;
  unit_count_ += 1;
  if (keep_units_) units_.push_back(u);
  return true;
}

void BrokerLoad::add(const SubUnit& u, const PublisherTable& table) {
  // Caller checked fits(); merge and account in one fused walk.
  in_rate_ += u.in_rate - union_.merge_with_rate(u.profile, table);
  used_bw_ += u.out_bw;
  filter_count_ += u.filter_count;
  unit_count_ += 1;
  if (keep_units_) units_.push_back(u);
}

}  // namespace greenps
