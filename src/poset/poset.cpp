#include "poset/poset.hpp"

#include <algorithm>
#include <cassert>

namespace greenps {

ProfilePoset::ProfilePoset() {
  Node root;
  root.alive = true;
  nodes_.push_back(std::move(root));
}

bool ProfilePoset::alive(NodeId node) const {
  return node < nodes_.size() && nodes_[node].alive;
}

const SubscriptionProfile& ProfilePoset::profile(NodeId node) const {
  assert(alive(node));
  return nodes_[node].profile;
}

std::uint64_t ProfilePoset::payload(NodeId node) const {
  assert(alive(node));
  return nodes_[node].payload;
}

const std::vector<ProfilePoset::NodeId>& ProfilePoset::children(NodeId node) const {
  assert(alive(node));
  return nodes_[node].children;
}

const std::vector<ProfilePoset::NodeId>& ProfilePoset::parents(NodeId node) const {
  assert(alive(node));
  return nodes_[node].parents;
}

bool ProfilePoset::node_covers(NodeId sup, const SubscriptionProfile& p) const {
  if (sup == kRoot) return true;
  return SubscriptionProfile::covers(nodes_[sup].profile, p);
}

void ProfilePoset::link(NodeId parent, NodeId child) {
  auto& pc = nodes_[parent].children;
  if (std::find(pc.begin(), pc.end(), child) == pc.end()) pc.push_back(child);
  auto& cp = nodes_[child].parents;
  if (std::find(cp.begin(), cp.end(), parent) == cp.end()) cp.push_back(parent);
}

void ProfilePoset::unlink(NodeId parent, NodeId child) {
  auto& pc = nodes_[parent].children;
  pc.erase(std::remove(pc.begin(), pc.end(), child), pc.end());
  auto& cp = nodes_[child].parents;
  cp.erase(std::remove(cp.begin(), cp.end(), parent), cp.end());
}

ProfilePoset::InsertResult ProfilePoset::insert(SubscriptionProfile p, std::uint64_t payload) {
  // Phase A: find the parent frontier — nodes covering `p` none of whose
  // children cover `p`. Start at the root (which covers everything).
  std::vector<NodeId> parents;
  std::vector<NodeId> stack{kRoot};
  std::vector<bool> visited(nodes_.size(), false);
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    if (visited[n]) continue;
    visited[n] = true;
    // Equal node already present?
    if (n != kRoot && SubscriptionProfile::covers(p, nodes_[n].profile) &&
        node_covers(n, p)) {
      return {n, false};
    }
    bool child_covers = false;
    for (const NodeId c : nodes_[n].children) {
      if (node_covers(c, p)) {
        child_covers = true;
        if (!visited[c]) stack.push_back(c);
      }
    }
    if (!child_covers) parents.push_back(n);
  }

  // Phase B: find the child frontier — maximal nodes that `p` covers.
  // On a covered hit, record it and do not descend (its descendants are
  // covered transitively and thus not maximal).
  std::vector<NodeId> kids;
  std::fill(visited.begin(), visited.end(), false);
  stack.push_back(kRoot);
  visited[kRoot] = true;
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    for (const NodeId c : nodes_[n].children) {
      if (visited[c]) continue;
      visited[c] = true;
      if (SubscriptionProfile::covers(p, nodes_[c].profile)) {
        kids.push_back(c);
      } else {
        stack.push_back(c);
      }
    }
  }

  // Allocate the node.
  NodeId id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
  } else {
    id = nodes_.size();
    nodes_.emplace_back();
  }
  Node& node = nodes_[id];
  node.profile = std::move(p);
  node.payload = payload;
  node.alive = true;
  node.parents.clear();
  node.children.clear();
  ++live_;

  for (const NodeId par : parents) link(par, id);
  for (const NodeId kid : kids) {
    // Cut edges that the new node now mediates.
    for (const NodeId par : parents) unlink(par, kid);
    link(id, kid);
  }
  return {id, true};
}

void ProfilePoset::remove(NodeId node) {
  assert(alive(node) && node != kRoot);
  Node& n = nodes_[node];
  const std::vector<NodeId> parents = n.parents;
  const std::vector<NodeId> children = n.children;
  for (const NodeId p : parents) unlink(p, node);
  for (const NodeId c : children) unlink(node, c);
  // Reconnect orphaned children to the removed node's parents. Edges may be
  // redundant w.r.t. transitive reduction; traversals dedupe via visited
  // sets, and ordering (parent covers child) still holds transitively.
  for (const NodeId c : children) {
    if (nodes_[c].parents.empty()) {
      for (const NodeId p : parents) link(p, c);
    }
  }
  n.alive = false;
  n.payload = kNoPayload;
  // Release payload storage, not just reset it: the profile's bit vectors
  // and the (already-emptied) edge lists keep their heap allocations
  // otherwise, and under subscription churn dead slots would pin the
  // high-water memory of every profile ever inserted.
  n.profile = SubscriptionProfile();
  n.parents.clear();
  n.parents.shrink_to_fit();
  n.children.clear();
  n.children.shrink_to_fit();
  --live_;
  free_list_.push_back(node);
  // Compact trailing dead slots so node storage tracks the live high-water
  // mark instead of the total insert count. Interior dead slots stay on the
  // free list (live NodeIds must remain stable), but removal-heavy churn
  // keeps exposing new trailing runs, bounding steady-state slot count.
  while (nodes_.size() > 1 && !nodes_.back().alive) {
    const NodeId dead = nodes_.size() - 1;
    free_list_.erase(std::remove(free_list_.begin(), free_list_.end(), dead),
                     free_list_.end());
    nodes_.pop_back();
    ++slots_compacted_;
  }
}

std::vector<ProfilePoset::NodeId> ProfilePoset::descendants(NodeId node) const {
  assert(alive(node));
  std::vector<NodeId> out;
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<NodeId> stack{node};
  seen[node] = true;
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    for (const NodeId c : nodes_[n].children) {
      if (!seen[c]) {
        seen[c] = true;
        out.push_back(c);
        stack.push_back(c);
      }
    }
  }
  return out;
}

bool ProfilePoset::check_invariants() const {
  for (NodeId n = 0; n < nodes_.size(); ++n) {
    if (!nodes_[n].alive) continue;
    for (const NodeId c : nodes_[n].children) {
      if (!nodes_[c].alive) return false;
      if (!node_covers(n, nodes_[c].profile)) return false;
      const auto& cp = nodes_[c].parents;
      if (std::find(cp.begin(), cp.end(), n) == cp.end()) return false;
    }
    if (n != kRoot && nodes_[n].parents.empty()) return false;
  }
  // Reachability from root.
  std::size_t reached = 0;
  bfs([&reached](NodeId) {
    ++reached;
    return true;
  });
  return reached == live_;
}

}  // namespace greenps
