// Partially-ordered set of subscription profiles (Section IV-C.2).
//
// A DAG whose nodes are profiles ordered by bit-vector containment: a parent
// covers (is a superset of) each of its children; profiles with intersecting
// or empty relationships appear as siblings. A virtual ROOT covers
// everything. CRAM inserts one node per GIF and walks the DAG breadth-first,
// pruning subtrees whose relation to the probe is empty.
//
// Unlike the classical SIENA poset, ordering is decided from the *profiles*
// (bit vectors), not the subscription language — the paper's key point.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "profile/subscription_profile.hpp"

namespace greenps {

class ProfilePoset {
 public:
  using NodeId = std::size_t;
  static constexpr NodeId kRoot = 0;
  static constexpr std::uint64_t kNoPayload = ~std::uint64_t{0};

  ProfilePoset();

  struct InsertResult {
    NodeId node;
    bool inserted;  // false => an equal node already existed; `node` is it
  };

  // Insert a profile carrying an opaque payload (e.g. a GIF id).
  // If an equal profile already exists, nothing is inserted.
  InsertResult insert(SubscriptionProfile profile, std::uint64_t payload);

  // Remove a node, reconnecting its parents to its children.
  void remove(NodeId node);

  [[nodiscard]] bool alive(NodeId node) const;
  [[nodiscard]] const SubscriptionProfile& profile(NodeId node) const;
  [[nodiscard]] std::uint64_t payload(NodeId node) const;
  [[nodiscard]] const std::vector<NodeId>& children(NodeId node) const;
  [[nodiscard]] const std::vector<NodeId>& parents(NodeId node) const;

  // Number of live nodes (excluding the root).
  [[nodiscard]] std::size_t size() const { return live_; }

  // Number of allocated node slots (excluding the root), live or free.
  // remove() reclaims payload storage and compacts trailing dead slots, so
  // under balanced insert/remove churn this stays bounded by the live
  // high-water mark instead of growing with the total insert count.
  [[nodiscard]] std::size_t slot_count() const { return nodes_.size() - 1; }

  // Slots reclaimed by trailing compaction over the poset's lifetime.
  [[nodiscard]] std::size_t slots_compacted() const { return slots_compacted_; }

  // Breadth-first walk from the root. `fn(node)` returns true to descend
  // into the node's children. The root itself is not visited.
  template <typename Fn>
  void bfs(Fn&& fn) const {
    std::vector<NodeId> queue{children(kRoot)};
    std::vector<bool> seen(nodes_.size(), false);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const NodeId n = queue[head];
      if (seen[n]) continue;
      seen[n] = true;
      if (fn(n)) {
        for (const NodeId c : children(n)) {
          if (!seen[c]) queue.push_back(c);
        }
      }
    }
  }

  // All live descendants of `node` (nodes whose profiles it covers).
  [[nodiscard]] std::vector<NodeId> descendants(NodeId node) const;

  // Internal-consistency check used by tests: every edge parent->child obeys
  // covers(parent, child), and every live non-root node is reachable.
  [[nodiscard]] bool check_invariants() const;

 private:
  struct Node {
    SubscriptionProfile profile;
    std::uint64_t payload = kNoPayload;
    std::vector<NodeId> parents;
    std::vector<NodeId> children;
    bool alive = false;
  };

  // Does `sup` cover `sub`? The root covers everything.
  [[nodiscard]] bool node_covers(NodeId sup, const SubscriptionProfile& p) const;

  void link(NodeId parent, NodeId child);
  void unlink(NodeId parent, NodeId child);

  std::vector<Node> nodes_;
  std::vector<NodeId> free_list_;
  std::size_t live_ = 0;
  std::size_t slots_compacted_ = 0;
};

}  // namespace greenps
