// The profiling bit vector of Section III-B / Figure 1.
//
// A subscription profile keeps one of these per publisher. Bit i records
// whether the publication with message ID (first_id + i) from that publisher
// was delivered to the subscription. The window is bounded (default 1,280
// bits); recording a publication beyond the window slides the window forward
// just enough to record it in the last bit, updating `first_id` by the
// number of bits shifted.
#pragma once

#include <cstddef>

#include "bitvec/bit_vector.hpp"
#include "common/ids.hpp"

namespace greenps {

class WindowedBitVector {
 public:
  static constexpr std::size_t kDefaultCapacity = 1280;

  explicit WindowedBitVector(std::size_t capacity = kDefaultCapacity);

  // Record delivery of the publication with message ID `seq`.
  // Returns false (and records nothing) if `seq` has already slid out of the
  // window, true otherwise. The first recorded ID anchors the window.
  bool record(MessageSeq seq);

  // Message ID corresponding to bit 0.
  [[nodiscard]] MessageSeq first_id() const { return first_id_; }
  // One past the largest message ID this window can currently hold.
  [[nodiscard]] MessageSeq end_id() const {
    return first_id_ + static_cast<MessageSeq>(bits_.size());
  }
  [[nodiscard]] bool anchored() const { return anchored_; }
  [[nodiscard]] std::size_t capacity() const { return bits_.size(); }

  [[nodiscard]] const BitVector& bits() const { return bits_; }
  [[nodiscard]] std::size_t count() const { return bits_.count(); }
  [[nodiscard]] bool test_seq(MessageSeq seq) const;

  // --- Aligned set algebra (operands may have different first_id) ---

  // |a ∩ b|: set bits at equal message IDs.
  [[nodiscard]] static std::size_t intersect_count(const WindowedBitVector& a,
                                                   const WindowedBitVector& b);
  // |a ∪ b| = |a| + |b| − |a ∩ b|.
  [[nodiscard]] static std::size_t union_count(const WindowedBitVector& a,
                                               const WindowedBitVector& b);
  // |a ⊕ b| = |a| + |b| − 2|a ∩ b|.
  [[nodiscard]] static std::size_t xor_count(const WindowedBitVector& a,
                                             const WindowedBitVector& b);
  // Every set bit of `sub` is set in `sup`.
  [[nodiscard]] static bool covers(const WindowedBitVector& sup,
                                   const WindowedBitVector& sub);

  // Fused kernel: total set bits of a, of b, and of their aligned
  // intersection, computed in a single pass (the overlap region is walked
  // once with three popcounts; the non-overlapping remainders once each).
  // Equivalent to {a.count(), b.count(), intersect_count(a, b)}.
  struct PairCounts {
    std::size_t a = 0;
    std::size_t b = 0;
    std::size_t both = 0;
  };
  [[nodiscard]] static PairCounts pairwise_counts(const WindowedBitVector& a,
                                                  const WindowedBitVector& b);

  // OR `other` into this window (Figure 1 clustering). Bits of `other` older
  // than this window's start are dropped; newer bits slide this window
  // forward first so they fit.
  void merge(const WindowedBitVector& other);

  friend bool operator==(const WindowedBitVector&, const WindowedBitVector&) = default;

 private:
  void slide_to_hold(MessageSeq seq);

  BitVector bits_;
  MessageSeq first_id_ = 0;
  bool anchored_ = false;
};

}  // namespace greenps
