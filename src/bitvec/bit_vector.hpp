// Fixed-size dynamic bit vector with the set operations the profiling
// framework needs: popcount, offset-aligned AND/OR/XOR cardinalities, subset
// tests, and in-place down-shifts (used when the profiling window slides).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace greenps {

class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(std::size_t bits);

  [[nodiscard]] std::size_t size() const { return bits_; }
  [[nodiscard]] bool empty() const { return bits_ == 0; }

  void set(std::size_t i);
  void reset(std::size_t i);
  [[nodiscard]] bool test(std::size_t i) const;

  // Number of set bits.
  [[nodiscard]] std::size_t count() const;

  // Logical shift towards index 0 by `k` bits: bit i becomes bit i-k and the
  // lowest k bits are discarded. Size is unchanged; vacated high bits are 0.
  void shift_down(std::size_t k);

  // Set every bit of `other` (aligned at bit offsets) into this vector.
  // Bits of `other` that would land outside this vector are ignored.
  // `this_offset`/`other_offset` align the two coordinate systems:
  // other bit (other_offset + i) maps onto this bit (this_offset + i).
  void or_with(const BitVector& other, std::ptrdiff_t this_offset,
               std::ptrdiff_t other_offset, std::size_t len);

  // 64 bits starting at `bit_offset`, zero-padded past the end.
  [[nodiscard]] std::uint64_t word_at(std::size_t bit_offset) const;

  // |a ∩ b| over `len` bits where a starts at a_off and b at b_off.
  [[nodiscard]] static std::size_t and_count(const BitVector& a, std::size_t a_off,
                                             const BitVector& b, std::size_t b_off,
                                             std::size_t len);

  // Fused kernel: |a|, |b| and |a ∩ b| over the same aligned `len`-bit range
  // in one word loop (the words are loaded once and popcounted three ways,
  // instead of two count passes plus an AND pass).
  struct PairCounts {
    std::size_t a = 0;
    std::size_t b = 0;
    std::size_t both = 0;
  };
  [[nodiscard]] static PairCounts pair_counts(const BitVector& a, std::size_t a_off,
                                              const BitVector& b, std::size_t b_off,
                                              std::size_t len);

  // True iff every set bit of `sub` (over `len` bits from sub_off) is also
  // set in `sup` (from sup_off).
  [[nodiscard]] static bool contains(const BitVector& sup, std::size_t sup_off,
                                     const BitVector& sub, std::size_t sub_off,
                                     std::size_t len);

  // Number of set bits in [from, from+len) (clamped to size).
  [[nodiscard]] std::size_t count_range(std::size_t from, std::size_t len) const;

  // Index of the highest set bit, or -1 when no bit is set — a word-level
  // scan from the top (the window-merge hot path needs the newest recorded
  // publication without a per-bit walk).
  [[nodiscard]] std::ptrdiff_t highest_set() const;

  friend bool operator==(const BitVector&, const BitVector&) = default;

 private:
  [[nodiscard]] std::size_t word_count() const { return words_.size(); }
  void mask_tail();

  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace greenps
