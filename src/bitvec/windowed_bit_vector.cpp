#include "bitvec/windowed_bit_vector.hpp"

#include <algorithm>
#include <cassert>

namespace greenps {

WindowedBitVector::WindowedBitVector(std::size_t capacity) : bits_(capacity) {
  assert(capacity > 0);
}

void WindowedBitVector::slide_to_hold(MessageSeq seq) {
  const auto cap = static_cast<MessageSeq>(bits_.size());
  if (seq < first_id_ + cap) return;
  const MessageSeq shift = seq - (first_id_ + cap) + 1;
  bits_.shift_down(static_cast<std::size_t>(std::min<MessageSeq>(shift, cap)));
  first_id_ += shift;
}

bool WindowedBitVector::record(MessageSeq seq) {
  if (!anchored_) {
    first_id_ = seq;
    anchored_ = true;
  }
  if (seq < first_id_) return false;  // already slid past this publication
  slide_to_hold(seq);
  bits_.set(static_cast<std::size_t>(seq - first_id_));
  return true;
}

bool WindowedBitVector::test_seq(MessageSeq seq) const {
  if (seq < first_id_) return false;
  const MessageSeq off = seq - first_id_;
  if (off >= static_cast<MessageSeq>(bits_.size())) return false;
  return bits_.test(static_cast<std::size_t>(off));
}

std::size_t WindowedBitVector::intersect_count(const WindowedBitVector& a,
                                               const WindowedBitVector& b) {
  const MessageSeq lo = std::max(a.first_id_, b.first_id_);
  const MessageSeq hi = std::min(a.end_id(), b.end_id());
  if (hi <= lo) return 0;
  return BitVector::and_count(a.bits_, static_cast<std::size_t>(lo - a.first_id_),
                              b.bits_, static_cast<std::size_t>(lo - b.first_id_),
                              static_cast<std::size_t>(hi - lo));
}

std::size_t WindowedBitVector::union_count(const WindowedBitVector& a,
                                           const WindowedBitVector& b) {
  return a.count() + b.count() - intersect_count(a, b);
}

std::size_t WindowedBitVector::xor_count(const WindowedBitVector& a,
                                         const WindowedBitVector& b) {
  return a.count() + b.count() - 2 * intersect_count(a, b);
}

WindowedBitVector::PairCounts WindowedBitVector::pairwise_counts(const WindowedBitVector& a,
                                                                 const WindowedBitVector& b) {
  PairCounts c;
  const MessageSeq lo = std::max(a.first_id_, b.first_id_);
  const MessageSeq hi = std::min(a.end_id(), b.end_id());
  if (hi <= lo) {
    c.a = a.count();
    c.b = b.count();
    return c;
  }
  const auto a_lo = static_cast<std::size_t>(lo - a.first_id_);
  const auto b_lo = static_cast<std::size_t>(lo - b.first_id_);
  const auto len = static_cast<std::size_t>(hi - lo);
  const BitVector::PairCounts in = BitVector::pair_counts(a.bits_, a_lo, b.bits_, b_lo, len);
  c.both = in.both;
  c.a = in.a + a.bits_.count_range(0, a_lo) + a.bits_.count_range(a_lo + len, a.bits_.size());
  c.b = in.b + b.bits_.count_range(0, b_lo) + b.bits_.count_range(b_lo + len, b.bits_.size());
  return c;
}

bool WindowedBitVector::covers(const WindowedBitVector& sup, const WindowedBitVector& sub) {
  // Any set bit of `sub` outside `sup`'s window is by definition not covered.
  const std::size_t sub_total = sub.count();
  if (sub_total == 0) return true;
  const MessageSeq lo = std::max(sup.first_id_, sub.first_id_);
  const MessageSeq hi = std::min(sup.end_id(), sub.end_id());
  if (hi <= lo) return false;
  const auto sub_lo = static_cast<std::size_t>(lo - sub.first_id_);
  const auto len = static_cast<std::size_t>(hi - lo);
  if (sub.bits_.count_range(sub_lo, len) != sub_total) return false;
  return BitVector::contains(sup.bits_, static_cast<std::size_t>(lo - sup.first_id_),
                             sub.bits_, sub_lo, len);
}

void WindowedBitVector::merge(const WindowedBitVector& other) {
  // Newest set bit of `other` (the merge must slide this window far enough
  // to hold it); -1 doubles as the emptiness check.
  const std::ptrdiff_t highest = other.anchored_ ? other.bits_.highest_set() : -1;
  if (highest < 0) {
    if (!anchored_ && other.anchored_) {
      first_id_ = other.first_id_;
      anchored_ = true;
    }
    return;
  }
  if (!anchored_) {
    first_id_ = other.first_id_;
    anchored_ = true;
  }
  slide_to_hold(other.first_id_ + static_cast<MessageSeq>(highest));
  const MessageSeq lo = std::max(first_id_, other.first_id_);
  const MessageSeq hi = std::min(end_id(), other.end_id());
  if (hi <= lo) return;
  bits_.or_with(other.bits_, lo - first_id_, lo - other.first_id_,
                static_cast<std::size_t>(hi - lo));
}

}  // namespace greenps
