#include "bitvec/bit_vector.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace greenps {

namespace {
constexpr std::size_t kWordBits = 64;

std::size_t words_for(std::size_t bits) { return (bits + kWordBits - 1) / kWordBits; }
}  // namespace

BitVector::BitVector(std::size_t bits) : bits_(bits), words_(words_for(bits), 0) {}

void BitVector::set(std::size_t i) {
  assert(i < bits_);
  words_[i / kWordBits] |= std::uint64_t{1} << (i % kWordBits);
}

void BitVector::reset(std::size_t i) {
  assert(i < bits_);
  words_[i / kWordBits] &= ~(std::uint64_t{1} << (i % kWordBits));
}

bool BitVector::test(std::size_t i) const {
  if (i >= bits_) return false;
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
}

std::size_t BitVector::count() const {
  std::size_t total = 0;
  for (const auto w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

void BitVector::mask_tail() {
  const std::size_t rem = bits_ % kWordBits;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << rem) - 1;
  }
}

void BitVector::shift_down(std::size_t k) {
  if (k == 0) return;
  if (k >= bits_) {
    std::fill(words_.begin(), words_.end(), 0);
    return;
  }
  const std::size_t word_shift = k / kWordBits;
  const std::size_t bit_shift = k % kWordBits;
  const std::size_t n = words_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t src = i + word_shift;
    std::uint64_t lo = src < n ? words_[src] : 0;
    if (bit_shift != 0) {
      const std::uint64_t hi = (src + 1) < n ? words_[src + 1] : 0;
      lo = (lo >> bit_shift) | (hi << (kWordBits - bit_shift));
    }
    words_[i] = lo;
  }
  mask_tail();
}

std::uint64_t BitVector::word_at(std::size_t bit_offset) const {
  const std::size_t w = bit_offset / kWordBits;
  const std::size_t r = bit_offset % kWordBits;
  const std::uint64_t lo = w < words_.size() ? words_[w] : 0;
  if (r == 0) return lo;
  const std::uint64_t hi = (w + 1) < words_.size() ? words_[w + 1] : 0;
  return (lo >> r) | (hi << (kWordBits - r));
}

void BitVector::or_with(const BitVector& other, std::ptrdiff_t this_offset,
                        std::ptrdiff_t other_offset, std::size_t len) {
  // Normalize away negative offsets, then clip the copied range to both
  // vectors so the word loop below needs no per-bit bounds checks.
  if (this_offset < 0) {
    const std::ptrdiff_t skip = -this_offset;
    if (static_cast<std::size_t>(skip) >= len) return;
    this_offset = 0;
    other_offset += skip;
    len -= static_cast<std::size_t>(skip);
  }
  if (other_offset < 0) {
    const std::ptrdiff_t skip = -other_offset;
    if (static_cast<std::size_t>(skip) >= len) return;
    other_offset = 0;
    this_offset += skip;
    len -= static_cast<std::size_t>(skip);
  }
  const auto t0 = static_cast<std::size_t>(this_offset);
  const auto o0 = static_cast<std::size_t>(other_offset);
  if (t0 >= bits_ || o0 >= other.bits_) return;
  len = std::min({len, bits_ - t0, other.bits_ - o0});
  for (std::size_t i = 0; i < len; i += kWordBits) {
    std::uint64_t w = other.word_at(o0 + i);
    const std::size_t remaining = len - i;
    if (remaining < kWordBits) w &= (std::uint64_t{1} << remaining) - 1;
    if (w == 0) continue;
    const std::size_t t = t0 + i;
    const std::size_t tw = t / kWordBits;
    const std::size_t tr = t % kWordBits;
    words_[tw] |= w << tr;
    if (tr != 0 && tw + 1 < words_.size()) words_[tw + 1] |= w >> (kWordBits - tr);
  }
  mask_tail();
}

std::size_t BitVector::and_count(const BitVector& a, std::size_t a_off,
                                 const BitVector& b, std::size_t b_off,
                                 std::size_t len) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < len; i += kWordBits) {
    std::uint64_t wa = a.word_at(a_off + i);
    std::uint64_t wb = b.word_at(b_off + i);
    const std::size_t remaining = len - i;
    if (remaining < kWordBits) {
      const std::uint64_t mask = (std::uint64_t{1} << remaining) - 1;
      wa &= mask;
      wb &= mask;
    }
    total += static_cast<std::size_t>(std::popcount(wa & wb));
  }
  return total;
}

BitVector::PairCounts BitVector::pair_counts(const BitVector& a, std::size_t a_off,
                                             const BitVector& b, std::size_t b_off,
                                             std::size_t len) {
  PairCounts c;
  for (std::size_t i = 0; i < len; i += kWordBits) {
    std::uint64_t wa = a.word_at(a_off + i);
    std::uint64_t wb = b.word_at(b_off + i);
    const std::size_t remaining = len - i;
    if (remaining < kWordBits) {
      const std::uint64_t mask = (std::uint64_t{1} << remaining) - 1;
      wa &= mask;
      wb &= mask;
    }
    c.a += static_cast<std::size_t>(std::popcount(wa));
    c.b += static_cast<std::size_t>(std::popcount(wb));
    c.both += static_cast<std::size_t>(std::popcount(wa & wb));
  }
  return c;
}

bool BitVector::contains(const BitVector& sup, std::size_t sup_off,
                         const BitVector& sub, std::size_t sub_off,
                         std::size_t len) {
  for (std::size_t i = 0; i < len; i += kWordBits) {
    std::uint64_t ws = sup.word_at(sup_off + i);
    std::uint64_t wb = sub.word_at(sub_off + i);
    const std::size_t remaining = len - i;
    if (remaining < kWordBits) {
      const std::uint64_t mask = (std::uint64_t{1} << remaining) - 1;
      ws &= mask;
      wb &= mask;
    }
    if ((wb & ~ws) != 0) return false;
  }
  return true;
}

std::ptrdiff_t BitVector::highest_set() const {
  for (std::size_t i = words_.size(); i-- > 0;) {
    if (words_[i] != 0) {
      const auto top = kWordBits - 1 - static_cast<std::size_t>(std::countl_zero(words_[i]));
      return static_cast<std::ptrdiff_t>(i * kWordBits + top);
    }
  }
  return -1;
}

std::size_t BitVector::count_range(std::size_t from, std::size_t len) const {
  if (from >= bits_) return 0;
  len = std::min(len, bits_ - from);
  std::size_t total = 0;
  for (std::size_t i = 0; i < len; i += kWordBits) {
    std::uint64_t w = word_at(from + i);
    const std::size_t remaining = len - i;
    if (remaining < kWordBits) w &= (std::uint64_t{1} << remaining) - 1;
    total += static_cast<std::size_t>(std::popcount(w));
  }
  return total;
}

}  // namespace greenps
