#include "matching/matching_engine.hpp"

#include <algorithm>

namespace greenps {

std::string MatchingEngine::value_key(const Value& v) {
  // Numeric keys are canonicalized through double formatting so int 5 and
  // real 5.0 land in the same bucket (they are equal under Value::equals).
  if (v.is_numeric()) return "n:" + std::to_string(v.as_double());
  if (v.is_string()) return "s:" + v.as_string();
  return v.as_bool() ? "b:1" : "b:0";
}

const Predicate* MatchingEngine::pick_index_predicate(const Filter& f) const {
  const Predicate* best = nullptr;
  std::size_t best_distinct = 0;
  for (const auto& p : f.predicates()) {
    if (p.op != Op::kEq) continue;
    std::size_t distinct = 0;
    const auto it = buckets_.find(p.attribute);
    if (it != buckets_.end()) distinct = it->second.size();
    // `>=` so later predicates win ties: subscription filters typically put
    // the broad class predicate first and the selective one after it.
    if (best == nullptr || distinct >= best_distinct) {
      best = &p;
      best_distinct = distinct;
    }
  }
  return best;
}

void MatchingEngine::insert(Handle handle, Filter filter) {
  Entry e{std::move(filter), {}, {}};
  if (const Predicate* p = pick_index_predicate(e.filter)) {
    e.index_attr = p->attribute;
    e.index_key = value_key(p->value);
    buckets_[e.index_attr][e.index_key].push_back(handle);
  } else {
    scan_list_.push_back(handle);
  }
  entries_.insert_or_assign(handle, std::move(e));
}

void MatchingEngine::remove(Handle handle) {
  const auto it = entries_.find(handle);
  if (it == entries_.end()) return;
  const Entry& e = it->second;
  auto erase_from = [handle](std::vector<Handle>& v) {
    v.erase(std::remove(v.begin(), v.end(), handle), v.end());
  };
  if (e.index_attr.empty()) {
    erase_from(scan_list_);
  } else {
    auto bit = buckets_.find(e.index_attr);
    if (bit != buckets_.end()) {
      auto kit = bit->second.find(e.index_key);
      if (kit != bit->second.end()) {
        erase_from(kit->second);
        if (kit->second.empty()) bit->second.erase(kit);
      }
    }
  }
  entries_.erase(it);
}

const Filter* MatchingEngine::find(Handle handle) const {
  const auto it = entries_.find(handle);
  return it == entries_.end() ? nullptr : &it->second.filter;
}

std::vector<MatchingEngine::Handle> MatchingEngine::match(const Publication& pub) const {
  std::vector<Handle> out;
  auto try_candidates = [&](const std::vector<Handle>& candidates) {
    for (const Handle h : candidates) {
      const auto it = entries_.find(h);
      if (it != entries_.end() && it->second.filter.matches(pub)) out.push_back(h);
    }
  };
  for (const auto& [attr, value] : pub.attrs()) {
    const auto bit = buckets_.find(attr);
    if (bit == buckets_.end()) continue;
    const auto kit = bit->second.find(value_key(value));
    if (kit != bit->second.end()) try_candidates(kit->second);
  }
  try_candidates(scan_list_);
  return out;
}

}  // namespace greenps
