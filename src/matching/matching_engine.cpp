#include "matching/matching_engine.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <limits>

namespace greenps {

namespace {

thread_local std::size_t t_match_walks = 0;
std::atomic<bool> g_index_enabled{true};

// Conservative numeric interval [lo, hi] implied by a filter's inequality
// predicates on one attribute. Bounds are inclusive even for strict
// operators — candidates are re-checked with the full filter, so widening
// is safe and keeps the stab test branch-free.
struct Bounds {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  bool bounded_below = false;
  bool bounded_above = false;
};

}  // namespace

std::size_t MatchingEngine::match_walks() { return t_match_walks; }
void MatchingEngine::reset_match_walks() { t_match_walks = 0; }
void MatchingEngine::add_match_walks(std::size_t n) { t_match_walks += n; }
void MatchingEngine::set_index_enabled(bool enabled) {
  g_index_enabled.store(enabled, std::memory_order_relaxed);
}
bool MatchingEngine::index_enabled() {
  return g_index_enabled.load(std::memory_order_relaxed);
}

const Predicate* MatchingEngine::pick_eq_predicate(const Filter& f) const {
  const Predicate* best = nullptr;
  std::size_t best_distinct = 0;
  for (const auto& p : f.predicates()) {
    if (p.op != Op::kEq) continue;
    std::size_t distinct = 0;
    const auto it = attr_indexes_.find(Interner::global().find(p.attribute));
    if (it != attr_indexes_.end()) distinct = it->second.eq.size();
    // `>=` so later predicates win ties: subscription filters typically put
    // the broad class predicate first and the selective one after it.
    if (best == nullptr || distinct >= best_distinct) {
      best = &p;
      best_distinct = distinct;
    }
  }
  return best;
}

void MatchingEngine::insert(Handle handle, Filter filter) {
  remove(handle);  // replacing an entry must first drop its index refs
  Entry e{std::move(filter), {}, Slot::kScan, kNoIntern, {}};
  e.compiled = CompiledFilter(e.filter);
  if (const Predicate* p = pick_eq_predicate(e.filter)) {
    e.slot = Slot::kEq;
    e.index_attr = Interner::global().intern(p->attribute);
    e.eq_key = value_key(p->value);
    const auto it = entries_.insert_or_assign(handle, std::move(e)).first;
    const Entry& stored = it->second;
    attr_indexes_[stored.index_attr].eq[stored.eq_key].push_back(Ref{handle, &stored});
    return;
  }

  // No equality predicate: look for a numeric interval to index under,
  // preferring the most constrained attribute (both bounds > one bound).
  std::unordered_map<InternId, Bounds> bounds;
  std::vector<InternId> order;  // deterministic preference order
  for (const auto& p : e.filter.predicates()) {
    if (!p.value.is_numeric()) continue;
    if (p.op != Op::kLt && p.op != Op::kLe && p.op != Op::kGt && p.op != Op::kGe) continue;
    const InternId attr = Interner::global().intern(p.attribute);
    auto [it, inserted] = bounds.try_emplace(attr);
    if (inserted) order.push_back(attr);
    Bounds& b = it->second;
    const double v = p.value.as_double();
    if (p.op == Op::kLt || p.op == Op::kLe) {
      b.hi = b.bounded_above ? std::min(b.hi, v) : v;
      b.bounded_above = true;
    } else {
      b.lo = b.bounded_below ? std::max(b.lo, v) : v;
      b.bounded_below = true;
    }
  }
  const InternId* best = nullptr;
  int best_score = -1;
  for (const InternId& attr : order) {
    const Bounds& b = bounds.at(attr);
    const int score = (b.bounded_below ? 1 : 0) + (b.bounded_above ? 1 : 0);
    if (score > best_score) {
      best = &attr;
      best_score = score;
    }
  }
  if (best != nullptr) {
    const Bounds& b = bounds.at(*best);
    e.slot = Slot::kInterval;
    e.index_attr = *best;
    const auto it = entries_.insert_or_assign(handle, std::move(e)).first;
    auto& intervals = attr_indexes_[it->second.index_attr].intervals;
    const Interval iv{b.lo, b.hi, handle, &it->second};
    intervals.insert(std::upper_bound(intervals.begin(), intervals.end(), iv), iv);
  } else {
    const auto it = entries_.insert_or_assign(handle, std::move(e)).first;
    scan_list_.push_back(Ref{handle, &it->second});
  }
}

void MatchingEngine::remove(Handle handle) {
  const auto it = entries_.find(handle);
  if (it == entries_.end()) return;
  const Entry& e = it->second;
  auto erase_from = [handle](std::vector<Ref>& v) {
    v.erase(std::remove_if(v.begin(), v.end(),
                           [handle](const Ref& r) { return r.handle == handle; }),
            v.end());
  };
  switch (e.slot) {
    case Slot::kScan:
      erase_from(scan_list_);
      break;
    case Slot::kEq: {
      auto ait = attr_indexes_.find(e.index_attr);
      if (ait != attr_indexes_.end()) {
        auto kit = ait->second.eq.find(e.eq_key);
        if (kit != ait->second.eq.end()) {
          erase_from(kit->second);
          if (kit->second.empty()) ait->second.eq.erase(kit);
        }
      }
      break;
    }
    case Slot::kInterval: {
      auto ait = attr_indexes_.find(e.index_attr);
      if (ait != attr_indexes_.end()) {
        auto& ivs = ait->second.intervals;
        ivs.erase(std::remove_if(ivs.begin(), ivs.end(),
                                 [handle](const Interval& iv) { return iv.handle == handle; }),
                  ivs.end());
      }
      break;
    }
  }
  entries_.erase(it);
}

const Filter* MatchingEngine::find(Handle handle) const {
  const auto it = entries_.find(handle);
  return it == entries_.end() ? nullptr : &it->second.filter;
}

const CompiledFilter* MatchingEngine::compiled(Handle handle) const {
  const auto it = entries_.find(handle);
  return it == entries_.end() ? nullptr : &it->second.compiled;
}

void MatchingEngine::match_indexed(const Publication& pub, std::vector<Handle>& out) const {
  auto try_candidates = [&](const std::vector<Ref>& candidates) {
    for (const Ref& r : candidates) {
      ++t_match_walks;
      if (r.entry->compiled.matches(pub)) out.push_back(r.handle);
    }
  };
  const auto& keys = pub.attr_keys();
  for (const Publication::AttrKey& k : keys) {
    const auto ait = attr_indexes_.find(k.attr);
    if (ait == attr_indexes_.end()) continue;
    const AttrIndex& index = ait->second;
    if (!index.eq.empty()) {
      const auto kit = index.eq.find(k.key);
      if (kit != index.eq.end()) try_candidates(kit->second);
    }
    if (!index.intervals.empty() && k.key.tag == ValueKey::Tag::kNumber) {
      // Stab query: every interval with lo <= x is in the sorted prefix.
      const double x = std::bit_cast<double>(k.key.bits);
      const auto end = std::upper_bound(
          index.intervals.begin(), index.intervals.end(), x,
          [](double v, const Interval& iv) { return v < iv.lo; });
      for (auto iv = index.intervals.begin(); iv != end; ++iv) {
        if (iv->hi < x) continue;
        ++t_match_walks;
        if (iv->entry->compiled.matches(pub)) out.push_back(iv->handle);
      }
    }
  }
  try_candidates(scan_list_);
}

void MatchingEngine::match_into(const Publication& pub, std::vector<Handle>& out) const {
  if (!index_enabled()) {
    for (const auto& [h, e] : entries_) {
      ++t_match_walks;
      if (e.compiled.matches(pub)) out.push_back(h);
    }
    return;
  }
  match_indexed(pub, out);
}

void MatchingEngine::match_among(const Publication& pub,
                                 const std::vector<Handle>& candidates,
                                 std::vector<Handle>& out) const {
  for (const Handle h : candidates) {
    const auto it = entries_.find(h);
    if (it == entries_.end()) continue;
    ++t_match_walks;
    if (it->second.compiled.matches(pub)) out.push_back(h);
  }
}

std::vector<MatchingEngine::Handle> MatchingEngine::match(const Publication& pub) const {
  std::vector<Handle> out;
  match_into(pub, out);
  return out;
}

MatchingEngine::Snapshot MatchingEngine::build_snapshot() const {
  Snapshot s;
  std::vector<Handle> order;
  order.reserve(entries_.size());
  for (const auto& [h, e] : entries_) {
    (void)e;
    order.push_back(h);
  }
  std::sort(order.begin(), order.end());
  std::unordered_map<Handle, std::uint32_t> dense;
  dense.reserve(order.size());
  s.subs.reserve(order.size());
  for (const Handle h : order) {
    dense.emplace(h, static_cast<std::uint32_t>(s.subs.size()));
    s.subs.push_back(Snapshot::Sub{h, entries_.at(h).compiled});
  }
  // Copy the live index contents (rather than re-derive them from the
  // filters): bucket membership and interval bounds were chosen by
  // insertion-time heuristics, and preserving the exact per-bucket order
  // keeps snapshot probe order — and thus walk counts — identical to the
  // live engine's.
  s.attr_indexes.reserve(attr_indexes_.size());
  for (const auto& [attr, ai] : attr_indexes_) {
    Snapshot::AttrIdx& out = s.attr_indexes[attr];
    out.eq.reserve(ai.eq.size());
    for (const auto& [key, refs] : ai.eq) {
      std::vector<std::uint32_t>& bucket = out.eq[key];
      bucket.reserve(refs.size());
      for (const Ref& r : refs) bucket.push_back(dense.at(r.handle));
    }
    out.intervals.reserve(ai.intervals.size());
    for (const Interval& iv : ai.intervals) {
      out.intervals.push_back(Snapshot::Interval{iv.lo, iv.hi, dense.at(iv.handle)});
    }
  }
  s.scan_list.reserve(scan_list_.size());
  for (const Ref& r : scan_list_) s.scan_list.push_back(dense.at(r.handle));
  return s;
}

void MatchingEngine::Snapshot::match_into(const Publication& pub, MatchScratch& scratch,
                                          std::vector<std::uint32_t>& out,
                                          CandidateEvaluator* eval) const {
  if (!MatchingEngine::index_enabled()) {
    auto pred = [&](std::size_t i) {
      ++t_match_walks;
      return subs[i].filter.matches(pub);
    };
    for_each_matching(eval, &scratch, subs.size(), pred,
                      [&](std::size_t i) { out.push_back(static_cast<std::uint32_t>(i)); });
    return;
  }
  auto probe = [&](const std::vector<std::uint32_t>& cands) {
    auto pred = [&](std::size_t i) {
      ++t_match_walks;
      return subs[cands[i]].filter.matches(pub);
    };
    for_each_matching(eval, &scratch, cands.size(), pred,
                      [&](std::size_t i) { out.push_back(cands[i]); });
  };
  const auto& keys = pub.attr_keys();
  for (const Publication::AttrKey& k : keys) {
    const auto ait = attr_indexes.find(k.attr);
    if (ait == attr_indexes.end()) continue;
    const AttrIdx& index = ait->second;
    if (!index.eq.empty()) {
      const auto kit = index.eq.find(k.key);
      if (kit != index.eq.end()) probe(kit->second);
    }
    if (!index.intervals.empty() && k.key.tag == ValueKey::Tag::kNumber) {
      // Stab query: every interval with lo <= x is in the sorted prefix.
      const double x = std::bit_cast<double>(k.key.bits);
      const auto end = std::upper_bound(
          index.intervals.begin(), index.intervals.end(), x,
          [](double v, const Interval& iv) { return v < iv.lo; });
      const std::size_t prefix = static_cast<std::size_t>(end - index.intervals.begin());
      auto pred = [&](std::size_t i) {
        const Interval& iv = index.intervals[i];
        if (iv.hi < x) return false;
        ++t_match_walks;
        return subs[iv.sub].filter.matches(pub);
      };
      for_each_matching(eval, &scratch, prefix, pred,
                        [&](std::size_t i) { out.push_back(index.intervals[i].sub); });
    }
  }
  probe(scan_list);
}

}  // namespace greenps
