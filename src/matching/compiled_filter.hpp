// Pre-resolved form of a Filter for the matching hot path.
//
// A broker evaluates the same filter against thousands of publications;
// Filter::matches re-resolves each predicate's attribute by string and
// compares Values through the variant every time. CompiledFilter resolves
// once at build time: attributes become interned ids (matched against the
// publication's precomputed AttrKeys with integer compares), equality
// becomes a ValueKey compare, and numeric ranges compare raw doubles. The
// rare predicates with no fast form (string prefix/suffix/contains,
// negation) keep a copy of the original predicate and take the slow path.
//
// matches() returns exactly what Filter::matches returns for every
// publication (the differential test pits one against the other).
#pragma once

#include <cstdint>
#include <vector>

#include "language/interner.hpp"
#include "language/publication.hpp"
#include "language/subscription.hpp"

namespace greenps {

class CompiledFilter {
 public:
  CompiledFilter() = default;
  explicit CompiledFilter(const Filter& f);

  [[nodiscard]] bool matches(const Publication& pub) const;
  [[nodiscard]] std::size_t size() const { return preds_.size(); }

 private:
  enum class Kind : std::uint8_t {
    kEqKey,    // ValueKey equality (exact except NaN, which compiles to kSlow)
    kLt,       // numeric comparisons against `num`
    kLe,
    kGt,
    kGe,
    kPresent,  // attribute presence is the whole test
    kSlow,     // evaluate `slow` against the attribute's Value
  };

  struct Pred {
    InternId attr = kNoIntern;
    Kind kind = Kind::kSlow;
    ValueKey key;      // kEqKey
    double num = 0;    // kLt..kGe
    Predicate slow;    // kSlow
  };

  std::vector<Pred> preds_;
};

}  // namespace greenps
