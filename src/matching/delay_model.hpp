// Matching-delay model (Section III-A).
//
// Each broker's BIA message carries "a linear function that models the
// matching delay as a function of the number of subscriptions". CROC uses
// it to predict a broker's input-rate ceiling: the maximum matching rate is
// the inverse of the per-message matching delay.
#pragma once

#include <cstddef>

#include "common/units.hpp"

namespace greenps {

struct MatchingDelayFunction {
  // delay(n) = base_s + per_sub_s * n, in seconds per message.
  double base_s = 20e-6;
  double per_sub_s = 0.5e-6;

  [[nodiscard]] double delay_s(std::size_t num_subscriptions) const {
    return base_s + per_sub_s * static_cast<double>(num_subscriptions);
  }

  // Messages per second the broker can match while hosting
  // `num_subscriptions` filters.
  [[nodiscard]] MsgRate max_matching_rate(std::size_t num_subscriptions) const;

  friend bool operator==(const MatchingDelayFunction&, const MatchingDelayFunction&) = default;
};

// Fit a linear delay function from two (n, delay) samples, as a CBC would
// when profiling its own matching engine.
[[nodiscard]] MatchingDelayFunction fit_delay_function(std::size_t n1, double d1_s,
                                                       std::size_t n2, double d2_s);

}  // namespace greenps
