#include "matching/relations.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <optional>
#include <vector>

namespace greenps {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Per-attribute normal form of a conjunction of predicates.
struct AttrConstraint {
  // Numeric interval [lo, hi] with open/closed ends.
  double lo = -kInf;
  double hi = kInf;
  bool lo_open = false;
  bool hi_open = false;
  bool numeric = false;  // any numeric predicate present

  std::optional<std::string> str_eq;
  std::vector<std::string> prefixes;
  std::vector<std::string> suffixes;
  std::vector<std::string> contains;
  bool stringy = false;  // any string predicate present

  std::optional<bool> bool_eq;
  bool boolish = false;

  std::vector<Value> neqs;
  bool present = false;        // at least one predicate names the attribute
  bool contradictory = false;  // provably empty

  void tighten_lo(double v, bool open) {
    if (v > lo || (v == lo && open && !lo_open)) {
      lo = v;
      lo_open = open;
    }
  }
  void tighten_hi(double v, bool open) {
    if (v < hi || (v == hi && open && !hi_open)) {
      hi = v;
      hi_open = open;
    }
  }
  [[nodiscard]] bool interval_empty() const {
    return lo > hi || (lo == hi && (lo_open || hi_open));
  }
};

using NormalForm = std::map<std::string, AttrConstraint>;

void absorb(AttrConstraint& c, const Predicate& p) {
  c.present = true;
  switch (p.op) {
    case Op::kPresent:
      return;
    case Op::kNeq:
      c.neqs.push_back(p.value);
      return;
    case Op::kEq:
      if (p.value.is_numeric()) {
        c.numeric = true;
        c.tighten_lo(p.value.as_double(), false);
        c.tighten_hi(p.value.as_double(), false);
      } else if (p.value.is_string()) {
        c.stringy = true;
        if (c.str_eq && *c.str_eq != p.value.as_string()) c.contradictory = true;
        c.str_eq = p.value.as_string();
      } else {
        c.boolish = true;
        if (c.bool_eq && *c.bool_eq != p.value.as_bool()) c.contradictory = true;
        c.bool_eq = p.value.as_bool();
      }
      return;
    case Op::kLt:
    case Op::kLe:
    case Op::kGt:
    case Op::kGe: {
      if (p.value.is_numeric()) {
        c.numeric = true;
        const double v = p.value.as_double();
        if (p.op == Op::kLt) c.tighten_hi(v, true);
        if (p.op == Op::kLe) c.tighten_hi(v, false);
        if (p.op == Op::kGt) c.tighten_lo(v, true);
        if (p.op == Op::kGe) c.tighten_lo(v, false);
      } else if (p.value.is_string()) {
        // Lexicographic string ranges: track conservatively as "stringy"
        // without an interval (rare in the evaluated workloads).
        c.stringy = true;
      }
      return;
    }
    case Op::kPrefix:
      c.stringy = true;
      c.prefixes.push_back(p.value.as_string());
      return;
    case Op::kSuffix:
      c.stringy = true;
      c.suffixes.push_back(p.value.as_string());
      return;
    case Op::kContains:
      c.stringy = true;
      c.contains.push_back(p.value.as_string());
      return;
  }
}

NormalForm normalize(const Filter& f) {
  NormalForm nf;
  for (const auto& p : f.predicates()) absorb(nf[p.attribute], p);
  for (auto& [attr, c] : nf) {
    (void)attr;
    if (c.numeric && (c.stringy || c.boolish)) c.contradictory = true;
    if (c.stringy && c.boolish) c.contradictory = true;
    if (c.numeric && c.interval_empty()) c.contradictory = true;
    if (c.str_eq) {
      for (const auto& pre : c.prefixes) {
        if (!c.str_eq->starts_with(pre)) c.contradictory = true;
      }
      for (const auto& suf : c.suffixes) {
        if (!c.str_eq->ends_with(suf)) c.contradictory = true;
      }
      for (const auto& sub : c.contains) {
        if (c.str_eq->find(sub) == std::string::npos) c.contradictory = true;
      }
      for (const auto& v : c.neqs) {
        if (v.is_string() && v.as_string() == *c.str_eq) c.contradictory = true;
      }
    }
    if (c.numeric && c.lo == c.hi && !c.lo_open && !c.hi_open) {
      for (const auto& v : c.neqs) {
        if (v.is_numeric() && v.as_double() == c.lo) c.contradictory = true;
      }
    }
  }
  return nf;
}

// Is the (possibly point-) value pinned by `x` excluded by one of `y`'s
// not-equals predicates?
bool pinned_value_excluded(const AttrConstraint& x, const AttrConstraint& y) {
  if (x.str_eq) {
    for (const auto& v : y.neqs) {
      if (v.is_string() && v.as_string() == *x.str_eq) return true;
    }
  }
  if (x.numeric && x.lo == x.hi && !x.lo_open && !x.hi_open) {
    for (const auto& v : y.neqs) {
      if (v.is_numeric() && v.as_double() == x.lo) return true;
    }
  }
  if (x.bool_eq) {
    for (const auto& v : y.neqs) {
      if (v.is_bool() && v.as_bool() == *x.bool_eq) return true;
    }
  }
  return false;
}

// Could a single value satisfy both attribute constraints?
bool attr_intersects(const AttrConstraint& a, const AttrConstraint& b) {
  if (a.contradictory || b.contradictory) return false;
  if (pinned_value_excluded(a, b) || pinned_value_excluded(b, a)) return false;
  const bool a_typed = a.numeric || a.stringy || a.boolish;
  const bool b_typed = b.numeric || b.stringy || b.boolish;
  if (a_typed && b_typed) {
    if (a.numeric != b.numeric || a.stringy != b.stringy || a.boolish != b.boolish) {
      return false;  // value cannot be of two kinds
    }
  }
  if (a.numeric && b.numeric) {
    const double lo = std::max(a.lo, b.lo);
    const double hi = std::min(a.hi, b.hi);
    const bool lo_open = (lo == a.lo && a.lo_open) || (lo == b.lo && b.lo_open);
    const bool hi_open = (hi == a.hi && a.hi_open) || (hi == b.hi && b.hi_open);
    if (lo > hi || (lo == hi && (lo_open || hi_open))) return false;
    // Point interval excluded by a neq?
    if (lo == hi) {
      for (const auto* side : {&a, &b}) {
        for (const auto& v : side->neqs) {
          if (v.is_numeric() && v.as_double() == lo) return false;
        }
      }
    }
    return true;
  }
  if (a.stringy && b.stringy) {
    if (a.str_eq && b.str_eq) return *a.str_eq == *b.str_eq;
    for (const auto* eq_side : {&a, &b}) {
      const auto* other = eq_side == &a ? &b : &a;
      if (!eq_side->str_eq) continue;
      const auto& s = *eq_side->str_eq;
      for (const auto& pre : other->prefixes) {
        if (!s.starts_with(pre)) return false;
      }
      for (const auto& suf : other->suffixes) {
        if (!s.ends_with(suf)) return false;
      }
      for (const auto& sub : other->contains) {
        if (s.find(sub) == std::string::npos) return false;
      }
      for (const auto& v : other->neqs) {
        if (v.is_string() && v.as_string() == s) return false;
      }
      return true;
    }
    // prefix-vs-prefix: compatible iff one prefixes the other.
    for (const auto& pa : a.prefixes) {
      for (const auto& pb : b.prefixes) {
        if (!pa.starts_with(pb) && !pb.starts_with(pa)) return false;
      }
    }
    return true;  // conservative for suffix/contains combinations
  }
  if (a.boolish && b.boolish) {
    if (a.bool_eq && b.bool_eq) return *a.bool_eq == *b.bool_eq;
    return true;
  }
  return true;  // one side only requires presence / is untyped
}

// Does constraint `outer` provably contain constraint `inner`?
bool attr_covers(const AttrConstraint& outer, const AttrConstraint& inner) {
  if (inner.contradictory) return true;  // empty set is contained in anything
  if (outer.contradictory) return false;
  // Presence-only outer constraint: inner names the attribute, so any
  // matching publication carries it.
  const bool outer_typed = outer.numeric || outer.stringy || outer.boolish;
  if (!outer_typed && outer.neqs.empty()) return true;
  if (outer.numeric) {
    if (!inner.numeric) return false;
    const bool lo_ok = inner.lo > outer.lo || (inner.lo == outer.lo && (!outer.lo_open || inner.lo_open));
    const bool hi_ok = inner.hi < outer.hi || (inner.hi == outer.hi && (!outer.hi_open || inner.hi_open));
    if (!lo_ok || !hi_ok) return false;
  }
  if (outer.stringy) {
    if (!inner.stringy || !inner.str_eq) {
      // Only equality-constrained inner filters are provably contained in
      // prefix/suffix/contains outers.
      if (outer.str_eq) return inner.str_eq && *inner.str_eq == *outer.str_eq;
      return false;
    }
    const auto& s = *inner.str_eq;
    if (outer.str_eq && *outer.str_eq != s) return false;
    for (const auto& pre : outer.prefixes) {
      if (!s.starts_with(pre)) return false;
    }
    for (const auto& suf : outer.suffixes) {
      if (!s.ends_with(suf)) return false;
    }
    for (const auto& sub : outer.contains) {
      if (s.find(sub) == std::string::npos) return false;
    }
  }
  if (outer.boolish) {
    if (!inner.boolish || !inner.bool_eq) return false;
    if (outer.bool_eq && *outer.bool_eq != *inner.bool_eq) return false;
  }
  // Every value outer excludes must be excluded by inner too.
  for (const auto& v : outer.neqs) {
    bool excluded = false;
    for (const auto& iv : inner.neqs) {
      if (iv == v) excluded = true;
    }
    if (!excluded && v.is_numeric() && inner.numeric) {
      const double d = v.as_double();
      if (d < inner.lo || d > inner.hi || (d == inner.lo && inner.lo_open) ||
          (d == inner.hi && inner.hi_open)) {
        excluded = true;
      }
    }
    if (!excluded && v.is_string() && inner.str_eq && *inner.str_eq != v.as_string()) {
      excluded = true;
    }
    if (!excluded) return false;
  }
  return true;
}

}  // namespace

bool unsatisfiable(const Filter& f) {
  const auto nf = normalize(f);
  return std::any_of(nf.begin(), nf.end(),
                     [](const auto& kv) { return kv.second.contradictory; });
}

bool intersects(const Filter& a, const Filter& b) {
  const auto na = normalize(a);
  const auto nb = normalize(b);
  for (const auto& [attr, ca] : na) {
    if (ca.contradictory) return false;
    const auto it = nb.find(attr);
    if (it != nb.end() && !attr_intersects(ca, it->second)) return false;
  }
  for (const auto& [attr, cb] : nb) {
    (void)attr;
    if (cb.contradictory) return false;
  }
  return true;
}

bool covers(const Filter& sup, const Filter& sub) {
  const auto nsup = normalize(sup);
  const auto nsub = normalize(sub);
  for (const auto& [attr, cs] : nsup) {
    const auto it = nsub.find(attr);
    if (it == nsub.end()) return false;  // sub may match pubs sup rejects
    if (!attr_covers(cs, it->second)) return false;
  }
  return true;
}

}  // namespace greenps
