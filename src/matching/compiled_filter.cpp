#include "matching/compiled_filter.hpp"

#include <bit>
#include <cmath>

namespace greenps {

CompiledFilter::CompiledFilter(const Filter& f) {
  preds_.reserve(f.predicates().size());
  for (const Predicate& p : f.predicates()) {
    Pred cp;
    cp.attr = Interner::global().intern(p.attribute);
    switch (p.op) {
      case Op::kEq:
        // NaN is the one value where bit equality and Value::equals disagree
        // (a NaN never equals itself); keep it on the slow path.
        if (p.value.is_numeric() && std::isnan(p.value.as_double())) {
          cp.kind = Kind::kSlow;
          cp.slow = p;
        } else {
          cp.kind = Kind::kEqKey;
          cp.key = value_key(p.value);
        }
        break;
      case Op::kLt:
      case Op::kLe:
      case Op::kGt:
      case Op::kGe:
        // Numeric ranges compare raw doubles; string ranges (lexicographic
        // in Value::less_than) stay on the slow path.
        if (p.value.is_numeric()) {
          switch (p.op) {
            case Op::kLt: cp.kind = Kind::kLt; break;
            case Op::kLe: cp.kind = Kind::kLe; break;
            case Op::kGt: cp.kind = Kind::kGt; break;
            default: cp.kind = Kind::kGe; break;
          }
          cp.num = p.value.as_double();
        } else {
          cp.kind = Kind::kSlow;
          cp.slow = p;
        }
        break;
      case Op::kPresent:
        cp.kind = Kind::kPresent;
        break;
      default:
        cp.kind = Kind::kSlow;
        cp.slow = p;
        break;
    }
    preds_.push_back(std::move(cp));
  }
}

bool CompiledFilter::matches(const Publication& pub) const {
  const auto& keys = pub.attr_keys();
  const std::size_t n = keys.size();
  for (const Pred& p : preds_) {
    // Publications carry ~a dozen attributes; a linear scan over the
    // precomputed 32-bit ids beats binary search on the name strings.
    std::size_t j = 0;
    while (j < n && keys[j].attr != p.attr) ++j;
    if (j == n) return false;
    const ValueKey& pk = keys[j].key;
    switch (p.kind) {
      case Kind::kEqKey:
        if (!(pk == p.key)) return false;
        break;
      case Kind::kLt:
        if (pk.tag != ValueKey::Tag::kNumber ||
            !(std::bit_cast<double>(pk.bits) < p.num)) {
          return false;
        }
        break;
      case Kind::kLe:
        if (pk.tag != ValueKey::Tag::kNumber ||
            !(std::bit_cast<double>(pk.bits) <= p.num)) {
          return false;
        }
        break;
      case Kind::kGt:
        if (pk.tag != ValueKey::Tag::kNumber ||
            !(std::bit_cast<double>(pk.bits) > p.num)) {
          return false;
        }
        break;
      case Kind::kGe:
        if (pk.tag != ValueKey::Tag::kNumber ||
            !(std::bit_cast<double>(pk.bits) >= p.num)) {
          return false;
        }
        break;
      case Kind::kPresent:
        break;
      case Kind::kSlow:
        if (!p.slow.matches(pub.attrs()[j].second)) return false;
        break;
    }
  }
  return true;
}

}  // namespace greenps
