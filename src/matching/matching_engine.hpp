// Broker-side matching engine.
//
// Stores filters under opaque handles and, given a publication, returns the
// handles of all matching filters. The engine keeps typed per-attribute
// indexes keyed on interned ids (no string construction on the match path):
//
//   - equality: filters carrying an equality predicate are bucketed under
//     one (attribute id, value key) pair — the engine adaptively picks the
//     attribute with the highest observed selectivity;
//   - numeric intervals: range-only filters (e.g. `[volume,>,1000]`) are
//     indexed under one attribute's conservative [lo, hi] interval, sorted
//     by lower bound, so a match stabs the interval list instead of
//     brute-forcing the scan list;
//   - residual scan list: only filters with neither an equality nor a
//     numeric range predicate (pure string operators, negation, presence).
//
// Every probed candidate is confirmed with a full Filter::matches, so the
// indexes only need to be conservative (never miss a possible match).
//
// Concurrency model: the live engine is a single-writer structure — insert,
// remove and the live match path belong to the owning thread. For
// concurrent readers, build_snapshot() produces an immutable Snapshot
// (dense candidate arrays, same probe order and walk counts as the live
// index) that the routing table publishes behind an epoch handle; snapshot
// matching touches no mutable engine state at all.
#pragma once

#include <cstdint>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "language/interner.hpp"
#include "language/publication.hpp"
#include "language/subscription.hpp"
#include "matching/compiled_filter.hpp"

namespace greenps {

// Caller-owned scratch for the allocation-free match paths. Each matching
// thread (simulation shard, test thread) owns one and reuses it across
// calls; nothing in the engine or routing table retains state between
// matches, which is what makes the const read paths genuinely data-race
// free.
struct MatchScratch {
  std::vector<std::uint64_t> handles;  // live-engine match output
  std::vector<std::uint32_t> dense;    // snapshot-path candidate indices
  std::vector<std::uint32_t> eval;     // parallel-evaluator output
};

// Type-erased, non-owning reference to a candidate predicate. Evaluators
// may invoke it from several threads at once, so the underlying callable
// must be safe for concurrent calls: immutable captures plus thread_local
// counters only.
class CandidatePred {
 public:
  // Constrained away from CandidatePred itself: without the exclusion,
  // direct-initializing one CandidatePred from a non-const lvalue of
  // another prefers this template over the copy constructor and wraps a
  // *reference to the other wrapper* — dangling as soon as that wrapper
  // (often a by-value parameter) goes out of scope.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cv_t<F>, CandidatePred>>>
  explicit CandidatePred(F& f)
      : ctx_(&f),
        fn_([](void* c, std::size_t i) { return (*static_cast<F*>(c))(i); }) {}

  bool operator()(std::size_t i) const { return fn_(ctx_, i); }

 private:
  void* ctx_;
  bool (*fn_)(void*, std::size_t);
};

// Hook for fanning candidate evaluation across threads. evaluate() must
// append, in ascending order, every index i in [0, n) with pred(i) true —
// the ascending-order contract is what keeps parallel matching bit-identical
// to the serial loop. Batches below threshold() stay on the calling thread.
class CandidateEvaluator {
 public:
  virtual ~CandidateEvaluator() = default;
  [[nodiscard]] virtual std::size_t threshold() const = 0;
  virtual void evaluate(std::size_t n, CandidatePred pred,
                        std::vector<std::uint32_t>& out) = 0;
};

// Runs `pred` over [0, n) and calls emit(i) for every true candidate, in
// ascending i. Small batches (or no evaluator) take the serial tight loop;
// large ones fan out through the evaluator via `scratch->eval`.
template <typename Pred, typename Emit>
void for_each_matching(CandidateEvaluator* eval, MatchScratch* scratch,
                       std::size_t n, Pred&& pred, Emit&& emit) {
  if (eval == nullptr || scratch == nullptr || n < eval->threshold()) {
    for (std::size_t i = 0; i < n; ++i) {
      if (pred(i)) emit(i);
    }
    return;
  }
  scratch->eval.clear();
  eval->evaluate(n, CandidatePred(pred), scratch->eval);
  for (const std::uint32_t i : scratch->eval) emit(i);
}

class MatchingEngine {
 public:
  using Handle = std::uint64_t;

  // Insert a filter; `handle` must be unique among live entries.
  void insert(Handle handle, Filter filter);
  // Remove a previously inserted filter. Unknown handles are ignored.
  void remove(Handle handle);

  // Handles of all filters matching `pub` (unordered).
  [[nodiscard]] std::vector<Handle> match(const Publication& pub) const;
  // Allocation-free variant: appends matches to `out` (not cleared).
  void match_into(const Publication& pub, std::vector<Handle>& out) const;
  // Restricted variant: considers only `candidates` (each must be a live
  // handle or is skipped). Used by advertisement-scoped pruning.
  void match_among(const Publication& pub, const std::vector<Handle>& candidates,
                   std::vector<Handle>& out) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const Filter* find(Handle handle) const;
  // Pre-resolved form of a live filter. The pointer stays valid until the
  // handle is removed (entries live in node-based storage); callers cache it
  // to evaluate candidates without re-resolving attribute names.
  [[nodiscard]] const CompiledFilter* compiled(Handle handle) const;

  // Visit every live (handle, filter) pair.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [h, e] : entries_) fn(h, e.filter);
  }

  // Immutable, self-contained copy of the typed indexes with candidates as
  // dense indices into `subs` (ascending handle order). Matching a snapshot
  // touches only the snapshot itself plus thread_local counters, so any
  // number of threads can match one concurrently; probe order and walk
  // counts are identical to the live engine's.
  struct Snapshot {
    struct Sub {
      Handle handle;
      CompiledFilter filter;
    };
    struct Interval {
      double lo;  // conservative, inclusive bounds
      double hi;
      std::uint32_t sub;
    };
    struct AttrIdx {
      std::unordered_map<ValueKey, std::vector<std::uint32_t>, ValueKeyHash> eq;
      std::vector<Interval> intervals;  // sorted by (lo, hi, handle)
    };

    std::vector<Sub> subs;  // ascending handle
    std::unordered_map<InternId, AttrIdx> attr_indexes;
    std::vector<std::uint32_t> scan_list;

    // Appends the dense indices of all matching subs to `out` (not
    // cleared). Passing an evaluator fans large candidate batches across
    // threads; the result is bit-identical either way.
    void match_into(const Publication& pub, MatchScratch& scratch,
                    std::vector<std::uint32_t>& out,
                    CandidateEvaluator* eval = nullptr) const;
  };

  [[nodiscard]] Snapshot build_snapshot() const;

  // Number of candidate filters evaluated (Filter::matches calls) by the
  // calling thread. Test/bench hook for the index-pruning invariant,
  // mirroring SubscriptionProfile::pairwise_walks(). With parallel
  // candidate evaluation, each evaluating thread accrues its own walks; the
  // simulator harvests them per worker slot so totals stay invariant.
  [[nodiscard]] static std::size_t match_walks();
  static void reset_match_walks();
  // Credit `n` candidate evaluations done outside the engine (the routing
  // table's advertisement-scoped fast path) to the same counter.
  static void add_match_walks(std::size_t n);

  // Test hook: disable the typed indexes process-wide and brute-force every
  // live filter instead. The match *set* is identical either way; the
  // determinism and differential tests assert exactly that. The flag is
  // atomic (safe to read from matching threads); flip it only while no
  // match is in flight or the walk-count accounting of concurrent matches
  // becomes unpredictable.
  static void set_index_enabled(bool enabled);
  [[nodiscard]] static bool index_enabled();

 private:
  enum class Slot : std::uint8_t { kScan, kEq, kInterval };

  struct Entry {
    Filter filter;
    CompiledFilter compiled;
    Slot slot = Slot::kScan;
    InternId index_attr = kNoIntern;
    ValueKey eq_key;  // valid when slot == kEq
  };

  // Index payload: the handle plus a pointer straight to its entry, so a
  // probe evaluates candidates without a hash lookup per candidate. Entry
  // pointers are stable (unordered_map nodes) until removal, which erases
  // the Ref from every index vector.
  struct Ref {
    Handle handle;
    const Entry* entry;
  };

  struct Interval {
    double lo;  // conservative, inclusive bounds
    double hi;
    Handle handle;
    const Entry* entry;

    friend bool operator<(const Interval& a, const Interval& b) {
      return a.lo != b.lo ? a.lo < b.lo : (a.hi != b.hi ? a.hi < b.hi : a.handle < b.handle);
    }
  };

  struct AttrIndex {
    std::unordered_map<ValueKey, std::vector<Ref>, ValueKeyHash> eq;
    std::vector<Interval> intervals;  // sorted
  };

  // Selectivity heuristic: prefer bucketing under the equality attribute
  // with the most distinct values observed so far.
  [[nodiscard]] const Predicate* pick_eq_predicate(const Filter& f) const;
  void match_indexed(const Publication& pub, std::vector<Handle>& out) const;

  std::unordered_map<Handle, Entry> entries_;
  std::unordered_map<InternId, AttrIndex> attr_indexes_;
  // Filters without any equality or numeric range predicate; always probed.
  std::vector<Ref> scan_list_;
};

}  // namespace greenps
