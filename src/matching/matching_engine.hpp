// Broker-side matching engine.
//
// Stores filters under opaque handles and, given a publication, returns the
// handles of all matching filters. Filters carrying an equality predicate
// are bucketed under one (attribute, value) pair — the engine adaptively
// picks the attribute with the highest observed selectivity — so a match
// only probes the buckets keyed by the publication's own attribute values
// plus a small residual scan list.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "language/publication.hpp"
#include "language/subscription.hpp"

namespace greenps {

class MatchingEngine {
 public:
  using Handle = std::uint64_t;

  // Insert a filter; `handle` must be unique among live entries.
  void insert(Handle handle, Filter filter);
  // Remove a previously inserted filter. Unknown handles are ignored.
  void remove(Handle handle);

  // Handles of all filters matching `pub` (unordered).
  [[nodiscard]] std::vector<Handle> match(const Publication& pub) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const Filter* find(Handle handle) const;

  // Visit every live (handle, filter) pair.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [h, e] : entries_) fn(h, e.filter);
  }

 private:
  struct Entry {
    Filter filter;
    std::string index_attr;  // empty => on the scan list
    std::string index_key;
  };

  // Selectivity heuristic: prefer bucketing under the equality attribute
  // with the most distinct values observed so far.
  [[nodiscard]] const Predicate* pick_index_predicate(const Filter& f) const;
  static std::string value_key(const Value& v);

  std::unordered_map<Handle, Entry> entries_;
  // (attr, value-key) -> handles
  std::unordered_map<std::string, std::unordered_map<std::string, std::vector<Handle>>> buckets_;
  // Filters without any equality predicate; always probed.
  std::vector<Handle> scan_list_;
};

}  // namespace greenps
