// Broker-side matching engine.
//
// Stores filters under opaque handles and, given a publication, returns the
// handles of all matching filters. The engine keeps typed per-attribute
// indexes keyed on interned ids (no string construction on the match path):
//
//   - equality: filters carrying an equality predicate are bucketed under
//     one (attribute id, value key) pair — the engine adaptively picks the
//     attribute with the highest observed selectivity;
//   - numeric intervals: range-only filters (e.g. `[volume,>,1000]`) are
//     indexed under one attribute's conservative [lo, hi] interval, sorted
//     by lower bound, so a match stabs the interval list instead of
//     brute-forcing the scan list;
//   - residual scan list: only filters with neither an equality nor a
//     numeric range predicate (pure string operators, negation, presence).
//
// Every probed candidate is confirmed with a full Filter::matches, so the
// indexes only need to be conservative (never miss a possible match).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "language/interner.hpp"
#include "language/publication.hpp"
#include "language/subscription.hpp"
#include "matching/compiled_filter.hpp"

namespace greenps {

class MatchingEngine {
 public:
  using Handle = std::uint64_t;

  // Insert a filter; `handle` must be unique among live entries.
  void insert(Handle handle, Filter filter);
  // Remove a previously inserted filter. Unknown handles are ignored.
  void remove(Handle handle);

  // Handles of all filters matching `pub` (unordered).
  [[nodiscard]] std::vector<Handle> match(const Publication& pub) const;
  // Allocation-free variant: appends matches to `out` (not cleared).
  void match_into(const Publication& pub, std::vector<Handle>& out) const;
  // Restricted variant: considers only `candidates` (each must be a live
  // handle or is skipped). Used by advertisement-scoped pruning.
  void match_among(const Publication& pub, const std::vector<Handle>& candidates,
                   std::vector<Handle>& out) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const Filter* find(Handle handle) const;
  // Pre-resolved form of a live filter. The pointer stays valid until the
  // handle is removed (entries live in node-based storage); callers cache it
  // to evaluate candidates without re-resolving attribute names.
  [[nodiscard]] const CompiledFilter* compiled(Handle handle) const;

  // Visit every live (handle, filter) pair.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [h, e] : entries_) fn(h, e.filter);
  }

  // Number of candidate filters evaluated (Filter::matches calls) by the
  // calling thread. Test/bench hook for the index-pruning invariant,
  // mirroring SubscriptionProfile::pairwise_walks().
  [[nodiscard]] static std::size_t match_walks();
  static void reset_match_walks();
  // Credit `n` candidate evaluations done outside the engine (the routing
  // table's advertisement-scoped fast path) to the same counter.
  static void add_match_walks(std::size_t n);

  // Test hook: disable the typed indexes process-wide and brute-force every
  // live filter instead. The match *set* is identical either way; the
  // determinism and differential tests assert exactly that. Not thread-safe
  // against concurrent matching.
  static void set_index_enabled(bool enabled);
  [[nodiscard]] static bool index_enabled();

 private:
  enum class Slot : std::uint8_t { kScan, kEq, kInterval };

  struct Entry {
    Filter filter;
    CompiledFilter compiled;
    Slot slot = Slot::kScan;
    InternId index_attr = kNoIntern;
    ValueKey eq_key;  // valid when slot == kEq
  };

  // Index payload: the handle plus a pointer straight to its entry, so a
  // probe evaluates candidates without a hash lookup per candidate. Entry
  // pointers are stable (unordered_map nodes) until removal, which erases
  // the Ref from every index vector.
  struct Ref {
    Handle handle;
    const Entry* entry;
  };

  struct Interval {
    double lo;  // conservative, inclusive bounds
    double hi;
    Handle handle;
    const Entry* entry;

    friend bool operator<(const Interval& a, const Interval& b) {
      return a.lo != b.lo ? a.lo < b.lo : (a.hi != b.hi ? a.hi < b.hi : a.handle < b.handle);
    }
  };

  struct AttrIndex {
    std::unordered_map<ValueKey, std::vector<Ref>, ValueKeyHash> eq;
    std::vector<Interval> intervals;  // sorted
  };

  // Selectivity heuristic: prefer bucketing under the equality attribute
  // with the most distinct values observed so far.
  [[nodiscard]] const Predicate* pick_eq_predicate(const Filter& f) const;
  void match_indexed(const Publication& pub, std::vector<Handle>& out) const;

  std::unordered_map<Handle, Entry> entries_;
  std::unordered_map<InternId, AttrIndex> attr_indexes_;
  // Filters without any equality or numeric range predicate; always probed.
  std::vector<Ref> scan_list_;
};

}  // namespace greenps
