// Language-level relations between filters.
//
// `covers` and `intersects` drive filter-based routing (subscriptions are
// propagated only toward intersecting advertisements) and validation of the
// bit-vector-level relations. Both are *conservative in the safe direction*:
// `intersects` may report true for disjoint filters with exotic string
// operators (extra routing, never lost messages), and `covers` only reports
// true when containment is provable.
#pragma once

#include "language/subscription.hpp"

namespace greenps {

// True iff some publication could match both filters.
[[nodiscard]] bool intersects(const Filter& a, const Filter& b);

// True iff every publication matching `sub` provably matches `sup`.
[[nodiscard]] bool covers(const Filter& sup, const Filter& sub);

// True iff no publication can match `f` (internally contradictory).
[[nodiscard]] bool unsatisfiable(const Filter& f);

}  // namespace greenps
