#include "matching/delay_model.hpp"

#include <algorithm>
#include <cassert>

namespace greenps {

MsgRate MatchingDelayFunction::max_matching_rate(std::size_t num_subscriptions) const {
  const double d = delay_s(num_subscriptions);
  assert(d > 0);
  return 1.0 / d;
}

MatchingDelayFunction fit_delay_function(std::size_t n1, double d1_s, std::size_t n2,
                                         double d2_s) {
  assert(n1 != n2);
  const double slope =
      (d2_s - d1_s) / (static_cast<double>(n2) - static_cast<double>(n1));
  const double base = d1_s - slope * static_cast<double>(n1);
  return MatchingDelayFunction{std::max(base, 1e-9), std::max(slope, 0.0)};
}

}  // namespace greenps
